/**
 * @file
 * Interval sampler: periodic snapshots of a StatsRegistry keyed to
 * committed-instruction count, exposing phase behaviour (region mix,
 * ARPT accuracy, LVC hit rate over time) instead of end-of-run
 * aggregates only.
 */

#ifndef ARL_OBS_SAMPLER_HH
#define ARL_OBS_SAMPLER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/stats_registry.hh"

namespace arl::obs
{

/**
 * Samples a registry every @p every committed instructions.
 *
 * The leaf-name list is frozen at construction (stats registered
 * later are not sampled), as is a baseline snapshot so deltas are
 * relative to the sampling start (e.g. after cache warmup), not to
 * zero.  tick() is cheap when no boundary was crossed.
 */
class IntervalSampler
{
  public:
    /** One snapshot, values in names() order. */
    struct Sample
    {
        std::uint64_t at = 0;  ///< committed instructions when taken
        std::vector<double> values;
    };

    /**
     * @param registry sampled registry; must outlive the sampler.
     * @param every    sampling period in committed instructions (>0).
     */
    IntervalSampler(const StatsRegistry &registry, std::uint64_t every);

    /**
     * Attach a streaming sink: every sample is written to @p os as a
     * CSV row ("at,<value>,...", header emitted immediately) instead
     * of accumulating in memory, so a 100 M-instruction run holds
     * O(1) sampler state.  samples()/deltas() stay empty; the
     * serialized report omits its "intervals" section.  The stream
     * must outlive the sampler.
     */
    void setStream(std::ostream *os);

    /** True when a streaming sink is attached. */
    bool streaming() const { return stream != nullptr; }

    /**
     * Notify progress to @p committed instructions; takes one sample
     * when the next boundary has been reached or passed.
     */
    void tick(std::uint64_t committed);

    /**
     * End-of-run flush: capture the final partial interval (if any
     * instructions ran past the last sample) so a run of N committed
     * instructions yields ceil(N/every) rows, not floor.
     */
    void flush(std::uint64_t committed);

    /** Sampling period. */
    std::uint64_t every() const { return interval; }

    /** Frozen leaf-stat names (column order of every sample). */
    const std::vector<std::string> &names() const { return statNames; }

    /** Values captured at construction (the delta baseline). */
    const std::vector<double> &baseline() const { return base; }

    /** All samples taken so far (cumulative values). */
    const std::vector<Sample> &samples() const { return taken; }

    /**
     * Per-interval differences: deltas()[0] is samples()[0] minus the
     * baseline, deltas()[i] is samples()[i] minus samples()[i-1].
     * Meaningful for counters; for gauges/formulas it is the change
     * in level over the interval.
     */
    std::vector<Sample> deltas() const;

  private:
    std::vector<double> sampleValues() const;
    void capture(std::uint64_t committed);

    const StatsRegistry &registry;
    std::uint64_t interval;
    std::uint64_t nextAt;
    std::vector<std::string> statNames;
    std::vector<double> base;
    std::vector<Sample> taken;
    std::ostream *stream = nullptr;
    std::uint64_t lastStreamedAt = 0;
};

} // namespace arl::obs

#endif // ARL_OBS_SAMPLER_HH
