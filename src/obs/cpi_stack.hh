/**
 * @file
 * Cycle-accounting CPI stack: one attributed cause per simulated
 * cycle, so the per-cause counters always sum exactly to total
 * cycles — no unattributed and no double-counted time.
 *
 * The taxonomy follows where a cycle with zero commits was lost,
 * resolved from the ROB head outward (top-down accounting):
 *
 *   Commit           at least one instruction retired this cycle
 *   FrontendEmpty    ROB empty — the front end delivered nothing
 *   RobFull          dispatch blocked on a full ROB (head cause weak)
 *   LsqFull          dispatch blocked on a full LSQ (head cause weak)
 *   LvaqFull         dispatch blocked on a full LVAQ (head cause weak)
 *   LoadPort         head load denied a cache port (dcache/lvc leaf)
 *   StoreCommit      completed head store found no store port
 *   BankConflict     head load serialized behind a busy cache bank
 *   MshrFull         head load's miss waited for a free MSHR
 *   WritebackFull    head load's miss waited on the writeback buffer
 *   BusBusy          head load's fill queued behind the shared bus
 *   TlbWalk          head access stalled in a page-table walk
 *   RegionMispredict head re-routed after a steering misprediction
 *   MemLatency       head load waiting on plain hierarchy latency
 *   ExecLatency      head executing in a (non-memory) functional unit
 *   Other            residual (store-data waits, issue-ramp cycles)
 *
 * Causes are tracked per memory pipe (DCache / LVC) where a pipe is
 * meaningful; the port/bank/MSHR/store-commit causes register per-pipe
 * leaves and the rest register pipe-summed leaves, under
 * "<prefix>.<cause>".  Accumulation is counters only and never feeds
 * back into timing, so enabling the stack cannot change any simulated
 * number.
 */

#ifndef ARL_OBS_CPI_STACK_HH
#define ARL_OBS_CPI_STACK_HH

#include <cstdint>
#include <string>

namespace arl::obs
{

class StatsRegistry;

/** Where one zero-commit cycle went (see file comment). */
enum class StallCause : std::uint8_t
{
    Commit,
    FrontendEmpty,
    RobFull,
    LsqFull,
    LvaqFull,
    LoadPort,
    StoreCommit,
    BankConflict,
    MshrFull,
    WritebackFull,
    BusBusy,
    TlbWalk,
    RegionMispredict,
    MemLatency,
    ExecLatency,
    Other,
    NumCauses
};

/** Snake-case leaf name of @p cause ("frontend_empty", ...). */
const char *stallCauseName(StallCause cause);

/** Per-cause, per-pipe cycle accumulator. */
class CpiStack
{
  public:
    static constexpr unsigned NumPipes = 2;  ///< [DCache, Lvc]

    /** Charge one cycle to @p cause on @p pipe. */
    void
    add(StallCause cause, unsigned pipe = 0)
    {
        ++cycles_[static_cast<unsigned>(cause)][pipe & 1];
    }

    /** Cycles charged to @p cause on @p pipe. */
    std::uint64_t
    of(StallCause cause, unsigned pipe) const
    {
        return cycles_[static_cast<unsigned>(cause)][pipe & 1];
    }

    /** Cycles charged to @p cause, both pipes. */
    std::uint64_t
    of(StallCause cause) const
    {
        return of(cause, 0) + of(cause, 1);
    }

    /** Sum over every cause; equals total cycles by construction. */
    std::uint64_t total() const;

    void reset();

    /**
     * Register the stack's leaves under "<prefix>." (for the core:
     * "ooo.cpi_stack").  LoadPort registers as the per-pipe leaves
     * dcache_port / lvc_port; StoreCommit, BankConflict and MshrFull
     * as "<cause>.dcache" / "<cause>.lvc"; every other cause as one
     * pipe-summed leaf, plus "<prefix>.total".  The registry reads
     * this object lazily — it must outlive @p registry snapshots.
     */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

  private:
    std::uint64_t cycles_[static_cast<unsigned>(
        StallCause::NumCauses)][NumPipes] = {};
};

} // namespace arl::obs

#endif // ARL_OBS_CPI_STACK_HH
