/**
 * @file
 * Opt-in pipeline event trace in the spirit of SimpleScalar's ptrace:
 * one text line per pipeline event, keyed by cycle, dynamic sequence
 * number and PC.  The interesting events for this paper are the
 * dispatch-time steering decision (LSQ vs LVAQ, and which §3 rule
 * made it), the TLB-time region verification, and the recovery events
 * (region mispredictions, value-prediction squashes).
 */

#ifndef ARL_OBS_PIPETRACE_HH
#define ARL_OBS_PIPETRACE_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace arl::obs
{

/** Pipeline event classes. */
enum class PipeEvent : std::uint8_t
{
    Dispatch,         ///< entered the ROB
    SteerLsq,         ///< memory op steered to the LSQ
    SteerLvaq,        ///< memory op steered to the LVAQ
    Issue,            ///< began execution
    AddrGen,          ///< store address generated early (base-only AGU)
    TlbVerify,        ///< region prediction checked at translation
    RegionMispredict, ///< steering verified wrong; re-routed
    Forward,          ///< load satisfied by an in-queue store
    MemAccess,        ///< load granted a port; cache access began
    Writeback,        ///< execution completed, result broadcast
    Squash,           ///< re-issued after a value misprediction
    Commit            ///< retired
};

/** Short fixed-width mnemonic ("DIS", "LVQ", ...) for @p ev. */
const char *pipeEventName(PipeEvent ev);

/**
 * Text emitter for pipeline events.
 *
 * The stream is caller-owned.  An optional event limit guards
 * against accidentally tracing a hundred-million-instruction run;
 * events past the limit are counted but not written.
 */
class PipeTracer
{
  public:
    /** @param max_events 0 = unlimited. */
    explicit PipeTracer(std::ostream &os, std::uint64_t max_events = 0);

    /** Emit one event line. */
    void event(std::uint64_t cycle, std::uint64_t seq, std::uint32_t pc,
               PipeEvent ev, const std::string &detail = "");

    /** Events written. */
    std::uint64_t emitted() const { return count; }

    /** Events suppressed by the limit. */
    std::uint64_t dropped() const { return droppedCount; }

  private:
    std::ostream &os;
    std::uint64_t limit;
    std::uint64_t count = 0;
    std::uint64_t droppedCount = 0;
};

} // namespace arl::obs

#endif // ARL_OBS_PIPETRACE_HH
