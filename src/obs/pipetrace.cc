#include "obs/pipetrace.hh"

#include <cstdio>

namespace arl::obs
{

const char *
pipeEventName(PipeEvent ev)
{
    switch (ev) {
      case PipeEvent::Dispatch: return "DIS";
      case PipeEvent::SteerLsq: return "LSQ";
      case PipeEvent::SteerLvaq: return "LVQ";
      case PipeEvent::Issue: return "ISS";
      case PipeEvent::AddrGen: return "AGN";
      case PipeEvent::TlbVerify: return "TLB";
      case PipeEvent::RegionMispredict: return "RMP";
      case PipeEvent::Forward: return "FWD";
      case PipeEvent::MemAccess: return "MEM";
      case PipeEvent::Writeback: return "WB ";
      case PipeEvent::Squash: return "SQH";
      case PipeEvent::Commit: return "CMT";
    }
    return "???";
}

PipeTracer::PipeTracer(std::ostream &out, std::uint64_t max_events)
    : os(out), limit(max_events)
{
    os << "# arl pipetrace: cycle seq pc event detail\n";
}

void
PipeTracer::event(std::uint64_t cycle, std::uint64_t seq, std::uint32_t pc,
                  PipeEvent ev, const std::string &detail)
{
    if (limit && count >= limit) {
        ++droppedCount;
        return;
    }
    ++count;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%10llu %8llu 0x%08x %s",
                  static_cast<unsigned long long>(cycle),
                  static_cast<unsigned long long>(seq), pc,
                  pipeEventName(ev));
    os << buf;
    if (!detail.empty())
        os << ' ' << detail;
    os << '\n';
}

} // namespace arl::obs
