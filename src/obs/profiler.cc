#include "obs/profiler.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "obs/json.hh"
#include "obs/stats_registry.hh"

namespace arl::obs
{

namespace
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct Accum
{
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
    std::uint64_t guestInsts = 0;
    std::uint64_t guestCycles = 0;
};

} // namespace

/** One thread's private accumulation state; never shared hot. */
struct Profiler::ThreadLog
{
    std::unordered_map<std::string, Accum> byPath;
    /** Active scope paths, innermost last. */
    std::vector<std::string> stack;
};

struct Profiler::Impl
{
    std::mutex mu;
    /** Keeps logs alive past thread exit so report() can merge. */
    std::vector<std::shared_ptr<ThreadLog>> logs;
};

std::atomic<bool> Profiler::enabledFlag{false};

Profiler::Profiler() : impl(new Impl) {}

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

Profiler::ThreadLog &
Profiler::threadLog()
{
    thread_local std::shared_ptr<ThreadLog> tls;
    if (!tls) {
        tls = std::make_shared<ThreadLog>();
        std::lock_guard<std::mutex> lock(impl->mu);
        impl->logs.push_back(tls);
    }
    return *tls;
}

void
Profiler::enable()
{
    std::lock_guard<std::mutex> lock(impl->mu);
    for (auto &log : impl->logs) {
        log->byPath.clear();
        log->stack.clear();
    }
    enableNs = nowNs();
    enabledFlag.store(true, std::memory_order_relaxed);
}

void
Profiler::disable()
{
    enabledFlag.store(false, std::memory_order_relaxed);
}

// ---- ProfScope ----------------------------------------------------

void
ProfScope::begin(const char *name, Mode mode)
{
    Profiler::ThreadLog &log = Profiler::instance().threadLog();
    std::string path;
    if (mode == Mode::Absolute || log.stack.empty())
        path = name;
    else
        path = log.stack.back() + "/" + name;
    log.stack.push_back(std::move(path));
    started = true;
    startNs = nowNs();
}

void
ProfScope::end()
{
    Profiler::ThreadLog &log = Profiler::instance().threadLog();
    if (log.stack.empty())
        return;  // enable() raced a live scope; drop the sample
    Accum &accum = log.byPath[log.stack.back()];
    accum.ns += nowNs() - startNs;
    accum.calls += 1;
    log.stack.pop_back();
}

void
ProfScope::addCount(std::uint64_t insts, std::uint64_t cycles)
{
    Profiler::ThreadLog &log = Profiler::instance().threadLog();
    if (log.stack.empty())
        return;
    Accum &accum = log.byPath[log.stack.back()];
    accum.guestInsts += insts;
    accum.guestCycles += cycles;
}

// ---- report -------------------------------------------------------

namespace
{

Profiler::Node &
childNamed(std::vector<Profiler::Node> &nodes, const std::string &seg)
{
    for (Profiler::Node &node : nodes)
        if (node.name == seg)
            return node;
    nodes.push_back({});
    nodes.back().name = seg;
    return nodes.back();
}

void
sortTree(std::vector<Profiler::Node> &nodes)
{
    std::sort(nodes.begin(), nodes.end(),
              [](const Profiler::Node &a, const Profiler::Node &b) {
                  return a.name < b.name;
              });
    for (Profiler::Node &node : nodes)
        sortTree(node.children);
}

} // namespace

Profiler::Report
Profiler::report() const
{
    // Merge per-thread logs path-by-path into a deterministic map.
    std::map<std::string, Accum> merged;
    {
        std::lock_guard<std::mutex> lock(impl->mu);
        for (const auto &log : impl->logs)
            for (const auto &[path, accum] : log->byPath) {
                Accum &into = merged[path];
                into.ns += accum.ns;
                into.calls += accum.calls;
                into.guestInsts += accum.guestInsts;
                into.guestCycles += accum.guestCycles;
            }
    }

    Report out;
    out.totalSeconds =
        enableNs ? (nowNs() - enableNs) / 1e9 : 0.0;
    out.peakRssKb = obs::peakRssKb();
    out.meta = hostMeta();
    for (const auto &[path, accum] : merged) {
        out.guestInsts += accum.guestInsts;
        out.guestCycles += accum.guestCycles;
        std::vector<Node> *level = &out.phases;
        Node *node = nullptr;
        std::size_t begin = 0;
        while (begin <= path.size()) {
            std::size_t slash = path.find('/', begin);
            std::string seg =
                path.substr(begin, slash == std::string::npos
                                       ? std::string::npos
                                       : slash - begin);
            node = &childNamed(*level, seg);
            level = &node->children;
            if (slash == std::string::npos)
                break;
            begin = slash + 1;
        }
        node->ns = accum.ns;
        node->calls = accum.calls;
        node->guestInsts = accum.guestInsts;
        node->guestCycles = accum.guestCycles;
    }
    sortTree(out.phases);
    return out;
}

std::uint64_t
Profiler::Node::inclusiveGuestInsts() const
{
    std::uint64_t total = guestInsts;
    for (const Node &child : children)
        total += child.inclusiveGuestInsts();
    return total;
}

double
Profiler::Node::mips() const
{
    const double secs = seconds();
    return secs > 0.0 ? inclusiveGuestInsts() / 1e6 / secs : 0.0;
}

double
Profiler::Report::phaseSeconds() const
{
    double total = 0.0;
    for (const Node &node : phases)
        total += node.seconds();
    return total;
}

namespace
{

void
renderNode(std::ostringstream &os, const Profiler::Node &node,
           unsigned depth, double total_seconds)
{
    char line[192];
    std::string label(depth * 2, ' ');
    label += node.name;
    const double pct = total_seconds > 0.0
                           ? 100.0 * node.seconds() / total_seconds
                           : 0.0;
    const std::uint64_t insts = node.inclusiveGuestInsts();
    if (insts)
        std::snprintf(line, sizeof(line),
                      "  %-34s %9.3fs %5.1f%% %7llu %11llu %7.2f\n",
                      label.c_str(), node.seconds(), pct,
                      (unsigned long long)node.calls,
                      (unsigned long long)insts, node.mips());
    else
        std::snprintf(line, sizeof(line),
                      "  %-34s %9.3fs %5.1f%% %7llu %11s %7s\n",
                      label.c_str(), node.seconds(), pct,
                      (unsigned long long)node.calls, "-", "-");
    os << line;
    for (const Profiler::Node &child : node.children)
        renderNode(os, child, depth + 1, total_seconds);
}

} // namespace

std::string
Profiler::Report::render() const
{
    std::ostringstream os;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "host profile: wall %.3fs, phases %.3fs (%.1f%% "
                  "coverage), guest %llu insts (%.2f MIPS aggregate), "
                  "peak RSS %llu KB\n",
                  totalSeconds, phaseSeconds(),
                  totalSeconds > 0.0
                      ? 100.0 * phaseSeconds() / totalSeconds
                      : 0.0,
                  (unsigned long long)guestInsts, aggregateMips(),
                  (unsigned long long)peakRssKb);
    os << line;
    std::snprintf(line, sizeof(line),
                  "build: v%s git %s %s, %s, %u CPUs\n",
                  meta.version.c_str(), meta.gitSha.c_str(),
                  meta.buildType.c_str(), meta.compiler.c_str(),
                  meta.cpus);
    os << line;
    std::snprintf(line, sizeof(line),
                  "  %-34s %10s %6s %7s %11s %7s\n", "phase", "wall",
                  "%", "calls", "g-insts", "MIPS");
    os << line;
    for (const Node &node : phases)
        renderNode(os, node, 0, totalSeconds);
    return os.str();
}

namespace
{

void
writeNodeJson(JsonWriter &w, const Profiler::Node &node)
{
    w.beginObject();
    w.field("name", node.name);
    w.field("seconds", node.seconds());
    w.field("calls", node.calls);
    w.field("guest_insts", node.guestInsts);
    w.field("guest_cycles", node.guestCycles);
    w.field("mips", node.mips());
    w.key("children").beginArray();
    for (const Profiler::Node &child : node.children)
        writeNodeJson(w, child);
    w.endArray();
    w.endObject();
}

} // namespace

void
Profiler::Report::writeJson(std::ostream &os,
                            const std::string &tool) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema_version", 1);
    w.field("tool", tool);
    w.field("kind", "profile");
    w.key("meta");
    writeHostMetaJson(w, meta);
    w.field("peak_rss_kb", peakRssKb);
    w.field("total_seconds", totalSeconds);
    w.field("phase_seconds", phaseSeconds());
    w.field("guest_insts", guestInsts);
    w.field("guest_cycles", guestCycles);
    w.field("guest_mips", aggregateMips());
    w.key("phases").beginArray();
    for (const Node &node : phases)
        writeNodeJson(w, node);
    w.endArray();
    w.endObject();
    os << '\n';
}

namespace
{

void
addNodeStats(StatsRegistry &reg, const Profiler::Node &node,
             const std::string &prefix)
{
    std::string base = prefix + "." + node.name;
    reg.gauge(base + ".seconds") = node.seconds();
    reg.counter(base + ".calls") = node.calls;
    reg.counter(base + ".guest_insts") = node.guestInsts;
    reg.gauge(base + ".mips") = node.mips();
    for (const Profiler::Node &child : node.children)
        addNodeStats(reg, child, base);
}

} // namespace

void
Profiler::Report::addStats(StatsRegistry &reg,
                           const std::string &prefix) const
{
    reg.gauge(prefix + ".total_seconds") = totalSeconds;
    reg.gauge(prefix + ".phase_seconds") = phaseSeconds();
    reg.counter(prefix + ".guest_insts") = guestInsts;
    reg.gauge(prefix + ".guest_mips") = aggregateMips();
    reg.counter(prefix + ".peak_rss_kb") = peakRssKb;
    for (const Node &node : phases)
        addNodeStats(reg, node, prefix);
}

} // namespace arl::obs
