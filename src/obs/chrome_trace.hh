/**
 * @file
 * Chrome Trace Event exporter: turns the core's pipeline event stream
 * into a trace JSON file that chrome://tracing and Perfetto render as
 * a per-instruction waterfall, one track group per pipe (D-cache /
 * LVC / non-memory), plus counter tracks taken from the interval
 * sampler.
 *
 * The tracer consumes the same event() callback as PipeTracer, so the
 * core fans a single stream out to both.  Timestamps are cycles
 * (Perfetto's unit label will read "us"; the ratios are what matter).
 */

#ifndef ARL_OBS_CHROME_TRACE_HH
#define ARL_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/pipetrace.hh"

namespace arl::obs
{

class IntervalSampler;

/**
 * Collects instruction lifecycles and emits Chrome trace JSON.
 *
 * Usage: feed event() during the run (Dispatch opens a record, Commit
 * closes it), optionally counterTracks() after the run, then finish()
 * exactly once to sort and serialize.  The stream is caller-owned.
 */
class ChromeTracer
{
  public:
    /** @param max_insts instruction-record cap (0 = unlimited). */
    explicit ChromeTracer(std::ostream &os, std::uint64_t max_insts = 0);

    /** Same signature as PipeTracer::event so the core can fan out. */
    void event(std::uint64_t cycle, std::uint64_t seq, std::uint32_t pc,
               PipeEvent ev, const std::string &detail = "");

    /** Append one point to the counter track @p name. */
    void counter(std::uint64_t cycle, const std::string &name,
                 double value);

    /**
     * Emit one counter track per stat the sampler froze, with
     * per-interval deltas; timestamps come from the sampled
     * "ooo.cycles" column (sample index when absent).
     */
    void counterTracks(const IntervalSampler &sampler);

    /** Sort and write the trace document; valid exactly once. */
    void finish(const std::string &process_name);

    /** Instruction records finalized (committed). */
    std::uint64_t emitted() const { return emittedCount; }

    /** Instruction records suppressed by the cap. */
    std::uint64_t dropped() const { return droppedCount; }

  private:
    /** Pipe track groups (tid bases keep the groups visually apart). */
    enum Group : std::uint8_t { Dcache = 0, Lvc = 1, Core = 2 };

    struct InstRecord
    {
        std::uint64_t seq = 0;
        std::uint32_t pc = 0;
        std::uint64_t dispatchAt = 0;
        std::uint64_t issueAt = kUnset;
        std::uint64_t memAt = kUnset;
        std::uint64_t writebackAt = kUnset;
        std::uint64_t commitAt = kUnset;
        std::uint8_t group = Core;
        std::string steer;
        std::vector<std::pair<std::uint64_t, const char *>> instants;
    };

    struct TraceEvent
    {
        std::uint64_t ts = 0;
        std::uint64_t dur = 0;
        char ph = 'X';
        std::uint32_t tid = 0;
        std::string name;
        std::uint64_t seq = 0;
        bool hasSeq = false;
        std::string steer;
        double value = 0.0;
        bool hasValue = false;
        std::string threadName;
    };

    static constexpr std::uint64_t kUnset = ~std::uint64_t(0);

    void finalizeRecords();
    void writeEvent(class JsonWriter &w, const TraceEvent &ev) const;

    std::ostream &os;
    std::uint64_t limit;
    std::uint64_t emittedCount = 0;
    std::uint64_t droppedCount = 0;
    bool finished = false;

    std::map<std::uint64_t, InstRecord> open;
    std::vector<InstRecord> done;
    std::vector<TraceEvent> events;
};

} // namespace arl::obs

#endif // ARL_OBS_CHROME_TRACE_HH
