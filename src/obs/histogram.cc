#include "obs/histogram.hh"

#include <algorithm>

namespace arl::obs
{

double
Log2Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p <= 0.0)
        return static_cast<double>(min());
    if (p > 1.0)
        p = 1.0;

    // Target rank, 1-based: the smallest k with k >= p * count.
    std::uint64_t rank = static_cast<std::uint64_t>(
        p * static_cast<double>(count_));
    if (static_cast<double>(rank) < p * static_cast<double>(count_))
        ++rank;
    rank = std::max<std::uint64_t>(rank, 1);

    // The extreme ranks are tracked exactly — no interpolation.
    if (rank <= 1)
        return static_cast<double>(min());
    if (rank >= count_)
        return static_cast<double>(max());

    std::uint64_t cumulative = 0;
    for (unsigned b = 0; b < NumBuckets; ++b) {
        if (buckets_[b] == 0)
            continue;
        if (cumulative + buckets_[b] < rank) {
            cumulative += buckets_[b];
            continue;
        }
        // The rank falls in this bucket: interpolate linearly across
        // its value range by the rank's position among the bucket's
        // samples.  The k-th of n samples sits at (k-1)/(n-1), so the
        // first/last ranks land on the bucket edges and a single-count
        // bucket reports its low edge rather than its high one (the
        // old rank/n rule returned bucketHigh for n == 1, inflating
        // p50/p90/p99 whenever the target bucket was sparse).
        const double low = static_cast<double>(bucketLow(b));
        const double high = static_cast<double>(bucketHigh(b));
        const std::uint64_t in_bucket = rank - cumulative;  // 1-based
        const double within =
            buckets_[b] > 1
                ? static_cast<double>(in_bucket - 1) /
                      static_cast<double>(buckets_[b] - 1)
                : 0.0;
        double value = low + within * (high - low);
        value = std::max(value, static_cast<double>(min()));
        value = std::min(value, static_cast<double>(max()));
        return value;
    }
    return static_cast<double>(max());
}

} // namespace arl::obs
