#include "obs/chrome_trace.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/sampler.hh"

namespace arl::obs
{

namespace
{

/** tid bases per pipe group; lanes within a group count up from 0. */
constexpr std::uint32_t kGroupBase[3] = { 100, 200, 300 };
constexpr const char *kGroupName[3] = { "dcache", "lvc", "core" };

} // namespace

ChromeTracer::ChromeTracer(std::ostream &out, std::uint64_t max_insts)
    : os(out), limit(max_insts)
{
}

void
ChromeTracer::event(std::uint64_t cycle, std::uint64_t seq,
                    std::uint32_t pc, PipeEvent ev,
                    const std::string &)
{
    ARL_ASSERT(!finished, "ChromeTracer::event after finish");
    if (ev == PipeEvent::Dispatch) {
        if (limit && emittedCount + open.size() >= limit) {
            ++droppedCount;
            return;
        }
        InstRecord rec;
        rec.seq = seq;
        rec.pc = pc;
        rec.dispatchAt = cycle;
        open.emplace(seq, std::move(rec));
        return;
    }

    auto it = open.find(seq);
    if (it == open.end())
        return;  // dropped by the cap, or dispatched before tracing
    InstRecord &rec = it->second;

    switch (ev) {
      case PipeEvent::SteerLsq:
        rec.group = Dcache;
        rec.steer = "lsq";
        break;
      case PipeEvent::SteerLvaq:
        rec.group = Lvc;
        rec.steer = "lvaq";
        break;
      case PipeEvent::Issue:
        if (rec.issueAt == kUnset)
            rec.issueAt = cycle;
        break;
      case PipeEvent::MemAccess:
        if (rec.memAt == kUnset)
            rec.memAt = cycle;
        break;
      case PipeEvent::Forward:
        rec.instants.emplace_back(cycle, "forward");
        break;
      case PipeEvent::Writeback:
        rec.writebackAt = cycle;  // last writeback wins after squashes
        break;
      case PipeEvent::RegionMispredict:
        rec.group = rec.group == Dcache ? Lvc : Dcache;
        rec.instants.emplace_back(cycle, "region_mispredict");
        break;
      case PipeEvent::Squash:
        rec.instants.emplace_back(cycle, "squash");
        break;
      case PipeEvent::Commit:
        rec.commitAt = cycle;
        ++emittedCount;
        done.push_back(std::move(rec));
        open.erase(it);
        break;
      case PipeEvent::Dispatch:
      case PipeEvent::AddrGen:
      case PipeEvent::TlbVerify:
        break;
    }
}

void
ChromeTracer::counter(std::uint64_t cycle, const std::string &name,
                      double value)
{
    ARL_ASSERT(!finished, "ChromeTracer::counter after finish");
    TraceEvent ev;
    ev.ph = 'C';
    ev.ts = cycle;
    ev.tid = 0;
    ev.name = name;
    ev.value = value;
    ev.hasValue = true;
    events.push_back(std::move(ev));
}

void
ChromeTracer::counterTracks(const IntervalSampler &sampler)
{
    const auto &names = sampler.names();
    std::size_t cycles_col = names.size();
    for (std::size_t i = 0; i < names.size(); ++i)
        if (names[i] == "ooo.cycles")
            cycles_col = i;

    const auto &cumulative = sampler.samples();
    const auto deltas = sampler.deltas();
    for (std::size_t s = 0; s < deltas.size(); ++s) {
        const std::uint64_t ts =
            cycles_col < names.size()
                ? static_cast<std::uint64_t>(
                      cumulative[s].values[cycles_col])
                : s;
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (i == cycles_col)
                continue;
            counter(ts, names[i], deltas[s].values[i]);
        }
    }
}

void
ChromeTracer::finalizeRecords()
{
    // Unretired instructions (run ended mid-flight) have no commit
    // point; drop them rather than invent a duration.
    open.clear();

    std::stable_sort(done.begin(), done.end(),
                     [](const InstRecord &a, const InstRecord &b) {
                         return a.dispatchAt < b.dispatchAt;
                     });

    // Greedy lane waterfall per group: overlapping lifetimes land on
    // different tids so Perfetto never has to nest unrelated slices.
    std::vector<std::uint64_t> lane_end[3];
    std::uint32_t used_lanes[3] = { 0, 0, 0 };

    for (const InstRecord &rec : done) {
        if (rec.commitAt == kUnset)
            continue;
        const unsigned g = rec.group;
        const std::uint64_t dur =
            rec.commitAt > rec.dispatchAt ? rec.commitAt - rec.dispatchAt
                                          : 1;
        std::size_t lane = 0;
        while (lane < lane_end[g].size() &&
               lane_end[g][lane] > rec.dispatchAt)
            ++lane;
        if (lane == lane_end[g].size())
            lane_end[g].push_back(0);
        lane_end[g][lane] = rec.dispatchAt + dur;
        if (lane + 1 > used_lanes[g])
            used_lanes[g] = static_cast<std::uint32_t>(lane + 1);
        const std::uint32_t tid =
            kGroupBase[g] + static_cast<std::uint32_t>(lane);

        char label[16];
        std::snprintf(label, sizeof(label), "0x%08x", rec.pc);

        TraceEvent parent;
        parent.ph = 'X';
        parent.ts = rec.dispatchAt;
        parent.dur = dur;
        parent.tid = tid;
        parent.name = label;
        parent.seq = rec.seq;
        parent.hasSeq = true;
        parent.steer = rec.steer;
        events.push_back(std::move(parent));

        if (rec.issueAt != kUnset && rec.writebackAt != kUnset &&
            rec.writebackAt >= rec.issueAt) {
            TraceEvent exec;
            exec.ph = 'X';
            exec.ts = rec.issueAt;
            exec.dur = rec.writebackAt > rec.issueAt
                           ? rec.writebackAt - rec.issueAt
                           : 1;
            exec.tid = tid;
            exec.name = "exec";
            events.push_back(std::move(exec));
        }
        if (rec.memAt != kUnset && rec.writebackAt != kUnset &&
            rec.writebackAt >= rec.memAt) {
            TraceEvent mem;
            mem.ph = 'X';
            mem.ts = rec.memAt;
            mem.dur = rec.writebackAt > rec.memAt
                          ? rec.writebackAt - rec.memAt
                          : 1;
            mem.tid = tid;
            mem.name = "mem";
            events.push_back(std::move(mem));
        }
        for (const auto &[cycle, name] : rec.instants) {
            TraceEvent inst;
            inst.ph = 'i';
            inst.ts = cycle;
            inst.tid = tid;
            inst.name = name;
            events.push_back(std::move(inst));
        }
    }
    done.clear();

    for (unsigned g = 0; g < 3; ++g) {
        for (std::uint32_t lane = 0; lane < used_lanes[g]; ++lane) {
            TraceEvent meta;
            meta.ph = 'M';
            meta.ts = 0;
            meta.tid = kGroupBase[g] + lane;
            meta.name = "thread_name";
            char tname[32];
            std::snprintf(tname, sizeof(tname), "%s lane %u",
                          kGroupName[g], lane);
            meta.threadName = tname;
            events.push_back(std::move(meta));
        }
    }
    TraceEvent proc;
    proc.ph = 'M';
    proc.ts = 0;
    proc.tid = 0;
    proc.name = "process_name";
    events.push_back(std::move(proc));
}

void
ChromeTracer::writeEvent(JsonWriter &w, const TraceEvent &ev) const
{
    const char ph[2] = { ev.ph, '\0' };
    w.beginObject();
    w.field("ph", ph);
    w.field("pid", 1);
    w.field("tid", ev.tid);
    w.field("ts", ev.ts);
    if (ev.ph == 'X')
        w.field("dur", ev.dur);
    w.field("name", ev.name);
    if (ev.ph == 'i')
        w.field("s", "t");
    if (ev.hasSeq || ev.hasValue || !ev.threadName.empty() ||
        !ev.steer.empty()) {
        w.key("args").beginObject();
        if (ev.hasSeq)
            w.field("seq", ev.seq);
        if (!ev.steer.empty())
            w.field("steer", ev.steer);
        if (ev.hasValue)
            w.field("value", ev.value);
        if (!ev.threadName.empty())
            w.field("name", ev.threadName);
        w.endObject();
    }
    w.endObject();
}

void
ChromeTracer::finish(const std::string &process_name)
{
    ARL_ASSERT(!finished, "ChromeTracer::finish called twice");
    finished = true;
    finalizeRecords();

    // Fill in the process-name metadata appended by finalizeRecords().
    for (TraceEvent &ev : events)
        if (ev.ph == 'M' && ev.name == "process_name")
            ev.threadName = process_name;

    // Viewers and the in-tree validator expect timestamps
    // non-decreasing; longer slices first at equal ts keeps parents
    // ahead of their contained children.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.dur > b.dur;
                     });

    JsonWriter w(os);
    w.beginObject();
    w.key("traceEvents").beginArray();
    for (const TraceEvent &ev : events)
        writeEvent(w, ev);
    w.endArray();
    w.endObject();
    os << "\n";
    events.clear();
}

} // namespace arl::obs
