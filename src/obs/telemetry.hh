/**
 * @file
 * Streaming telemetry channel: periodic heartbeat records (guest
 * insts/cycles, interval IPC, guest-MIPS, ETA, access mix, contention
 * deltas, peak RSS) appended as JSONL to a file, one write() per line
 * so every completed record is durable even if the process dies.
 *
 * Every emitted line is also copied into a bounded in-memory ring of
 * preformatted buffers; the flight recorder's fatal-signal handler
 * dumps that ring as a "black box" postamble using nothing but
 * async-signal-safe write() calls (see flight_recorder.hh).
 *
 * Layering: a TelemetryChannel is one output file shared by every
 * job of a run; a TelemetryScope binds the channel to one job
 * (workload, config, optional sampling representative) and computes
 * the per-interval rates.  The core's run loop only touches the
 * scope, and only when the cached telemetryActive flag is set, so a
 * disabled channel costs a single short-circuited branch per cycle.
 */

#ifndef ARL_OBS_TELEMETRY_HH
#define ARL_OBS_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace arl::obs
{

/** Schema version stamped on every telemetry line. */
constexpr int kTelemetrySchema = 1;

/** Tuning knobs for a telemetry channel. */
struct TelemetryOptions
{
    /** Heartbeat period in guest instructions (0 = wall-clock only). */
    std::uint64_t intervalInsts = 1'000'000;

    /**
     * Optional wall-clock heartbeat period in milliseconds.  When
     * set, the core checks the clock every min(intervalInsts, 64Ki)
     * instructions and emits when either trigger fires.
     */
    std::uint64_t intervalWallMs = 0;

    /** Black-box ring depth (most recent records kept for a crash). */
    std::size_t ringSize = 64;

    /**
     * Injectable monotonic clock (milliseconds).  Defaults to
     * std::chrono::steady_clock; tests and benches inject a fake for
     * deterministic rate fields.
     */
    std::function<std::uint64_t()> clockMs;

    /** Injectable peak-RSS provider (KiB).  Defaults to getrusage. */
    std::function<std::uint64_t()> rssKb;
};

/** Cumulative counters a core hands to its scope at each beat. */
struct TelemetryFrame
{
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t refsData = 0;
    std::uint64_t refsHeap = 0;
    std::uint64_t refsStack = 0;
    std::uint64_t lvaqSteered = 0;
    /** Sum of contended-resource stall cycles (0 when ideal). */
    std::uint64_t contentionStalls = 0;
};

/**
 * Append-only JSONL telemetry sink.  Thread-safe: sweep workers share
 * one channel and serialize on an internal mutex (the hot path is
 * the core-side interval check, not the emit).
 */
class TelemetryChannel
{
  public:
    /**
     * Open @p path for appending and write nothing yet.
     * @return nullptr (setting @p error) when the file cannot be
     *         opened.
     */
    static std::unique_ptr<TelemetryChannel>
    open(const std::string &path, const TelemetryOptions &opt,
         std::string *error = nullptr);

    ~TelemetryChannel();

    TelemetryChannel(const TelemetryChannel &) = delete;
    TelemetryChannel &operator=(const TelemetryChannel &) = delete;

    /** Channel header: tool/subcommand plus the interval config. */
    void emitMeta(const std::string &tool, const std::string &command);

    /**
     * Job lifecycle records (sweep coordinator; single-run commands
     * use job 0).  @p rep is the sampling-representative index, or -1
     * for an exact run.
     */
    void emitJobStart(int job, const std::string &workload,
                      const std::string &config, int rep,
                      std::uint64_t totalInsts);
    void emitJobDone(int job, const std::string &workload,
                     const std::string &config, int rep,
                     std::uint64_t insts, std::uint64_t cycles);

    /** Watchdog: @p job has not beaten for @p idleMs milliseconds. */
    void emitStall(int job, std::uint64_t idleMs);

    /** End-of-run trailer (monitor --follow stops on it). */
    void emitFinal(std::uint64_t totalInsts);

    /** Milliseconds on the channel's (injectable) clock. */
    std::uint64_t nowMs() const { return clock(); }

    std::uint64_t intervalInsts() const { return opts.intervalInsts; }
    std::uint64_t intervalWallMs() const { return opts.intervalWallMs; }

    /** Lines successfully written so far. */
    std::uint64_t recordsEmitted() const
    {
        return records.load(std::memory_order_relaxed);
    }
    /** Bytes successfully written so far. */
    std::uint64_t bytesWritten() const
    {
        return bytes.load(std::memory_order_relaxed);
    }

    /**
     * Milliseconds since the last heartbeat of @p job, or UINT64_MAX
     * when the job is not currently running (watchdog input).
     */
    std::uint64_t msSinceBeat(int job) const;

    /**
     * Async-signal-safe black-box dump: writes a postamble header
     * followed by the ring's preformatted lines (oldest first) using
     * only write().  Called from the flight recorder's handler; safe
     * to call from normal context too (tests do).
     */
    void dumpBlackBox(int signo);

    /** @name Internal: used by TelemetryScope. */
    ///@{
    void emitHeartbeat(std::uint64_t seq, int job,
                       const std::string &workload,
                       const std::string &config, int rep,
                       const TelemetryFrame &cum,
                       const TelemetryFrame &delta, std::uint64_t wallMs,
                       std::uint64_t deltaWallMs,
                       std::uint64_t totalInsts);
    std::uint64_t nextSeq()
    {
        return seqCounter.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    void jobStarted(int job);
    void jobFinished(int job);
    ///@}

  private:
    TelemetryChannel(int fd, const TelemetryOptions &opt);

    /** Format + single write() + ring copy; counts records/bytes. */
    void emitLine(const char *line, std::size_t len);

    static constexpr std::size_t kMaxLine = 512;

    struct RingSlot
    {
        std::atomic<std::uint32_t> len{0};
        char text[kMaxLine];
    };

    int fd = -1;
    TelemetryOptions opts;
    std::function<std::uint64_t()> clock;
    std::function<std::uint64_t()> rss;
    std::uint64_t openedMs = 0;

    std::mutex emitMutex;
    std::vector<RingSlot> ring;
    std::atomic<std::uint64_t> ringCount{0};
    std::atomic<std::uint64_t> records{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> seqCounter{0};

    /** Per-job last-beat timestamps for the watchdog (ms; 0 = idle). */
    mutable std::mutex beatMutex;
    std::vector<std::uint64_t> lastBeatMs;
};

/**
 * Per-job view of a channel: computes interval deltas, IPC,
 * guest-MIPS and ETA, and tells the core when to check next.  Not
 * thread-safe; one scope per job, used by that job's thread only.
 */
class TelemetryScope
{
  public:
    /**
     * @param rep        sampling-representative index, -1 for exact.
     * @param totalInsts instruction target for %-progress/ETA
     *                   (0 = unknown; ETA omitted).
     */
    TelemetryScope(TelemetryChannel *channel, int job,
                   std::string workload, std::string config, int rep,
                   std::uint64_t totalInsts);

    /** Emit the job-start record and start the rate clock. */
    void start();

    /**
     * Interval check from the core: emits a heartbeat when the
     * instruction or wall-clock trigger fired.
     * @return the committed-instruction count at which the core
     *         should call again (cached as telemetryNext).
     */
    std::uint64_t check(const TelemetryFrame &frame);

    /** First check threshold for a core starting at @p insts. */
    std::uint64_t firstCheckAt(std::uint64_t insts) const;

    /** Emit the job-done record. */
    void done(std::uint64_t insts, std::uint64_t cycles);

    TelemetryChannel *channel() const { return chan; }

  private:
    void beat(const TelemetryFrame &frame, std::uint64_t nowMs);

    TelemetryChannel *chan;
    int job;
    std::string workload;
    std::string config;
    int rep;
    std::uint64_t totalInsts;

    std::uint64_t startMs = 0;
    std::uint64_t lastMs = 0;
    TelemetryFrame last;
    std::uint64_t seq = 0;
    std::uint64_t subInterval = 0;
};

} // namespace arl::obs

#endif // ARL_OBS_TELEMETRY_HH
