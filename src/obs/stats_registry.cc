#include "obs/stats_registry.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace arl::obs
{

void
StatsRegistry::insert(const std::string &name, Entry entry)
{
    ARL_ASSERT(!name.empty(), "empty stat name");
    if (entries.count(name))
        fatal("StatsRegistry: duplicate stat '%s'", name.c_str());
    entries.emplace(name, std::move(entry));
}

void
StatsRegistry::addCounter(const std::string &name,
                          const std::uint64_t *value,
                          const std::string &desc)
{
    ARL_ASSERT(value, "null counter '%s'", name.c_str());
    Entry e;
    e.kind = Kind::Counter;
    e.desc = desc;
    e.counter = value;
    insert(name, std::move(e));
}

void
StatsRegistry::addGauge(const std::string &name, const double *value,
                        const std::string &desc)
{
    ARL_ASSERT(value, "null gauge '%s'", name.c_str());
    Entry e;
    e.kind = Kind::Gauge;
    e.desc = desc;
    e.gauge = value;
    insert(name, std::move(e));
}

void
StatsRegistry::addFormula(const std::string &name,
                          std::function<double()> formula,
                          const std::string &desc)
{
    ARL_ASSERT(formula, "null formula '%s'", name.c_str());
    Entry e;
    e.kind = Kind::Formula;
    e.desc = desc;
    e.formula = std::move(formula);
    insert(name, std::move(e));
}

void
StatsRegistry::addDistribution(const std::string &name,
                               const RunningStat *stat,
                               const std::string &desc)
{
    ARL_ASSERT(stat, "null distribution '%s'", name.c_str());
    Entry e;
    e.kind = Kind::Distribution;
    e.desc = desc;
    e.dist = stat;
    insert(name, std::move(e));
}

void
StatsRegistry::addHistogram(const std::string &name, const Histogram *hist,
                            const std::string &desc)
{
    ARL_ASSERT(hist, "null histogram '%s'", name.c_str());
    Entry e;
    e.kind = Kind::Histogram;
    e.desc = desc;
    e.hist = hist;
    insert(name, std::move(e));
}

void
StatsRegistry::addLog2Histogram(const std::string &name,
                                const Log2Histogram *hist,
                                const std::string &desc)
{
    ARL_ASSERT(hist, "null log2 histogram '%s'", name.c_str());
    Entry e;
    e.kind = Kind::Log2Hist;
    e.desc = desc;
    e.log2Hist = hist;
    insert(name, std::move(e));
}

std::uint64_t &
StatsRegistry::counter(const std::string &name, const std::string &desc)
{
    auto it = ownedCounterIndex.find(name);
    if (it != ownedCounterIndex.end())
        return *it->second;
    ownedCounters.push_back(0);
    std::uint64_t *slot = &ownedCounters.back();
    ownedCounterIndex[name] = slot;
    addCounter(name, slot, desc);
    return *slot;
}

double &
StatsRegistry::gauge(const std::string &name, const std::string &desc)
{
    auto it = ownedGaugeIndex.find(name);
    if (it != ownedGaugeIndex.end())
        return *it->second;
    ownedGauges.push_back(0.0);
    double *slot = &ownedGauges.back();
    ownedGaugeIndex[name] = slot;
    addGauge(name, slot, desc);
    return *slot;
}

void
StatsRegistry::expand(const std::string &name, const Entry &entry,
                      Snapshot &out) const
{
    switch (entry.kind) {
      case Kind::Counter:
        out.emplace_back(name, static_cast<double>(*entry.counter));
        break;
      case Kind::Gauge:
        out.emplace_back(name, *entry.gauge);
        break;
      case Kind::Formula:
        out.emplace_back(name, entry.formula());
        break;
      case Kind::Distribution:
        out.emplace_back(name + ".count",
                         static_cast<double>(entry.dist->count()));
        out.emplace_back(name + ".mean", entry.dist->mean());
        out.emplace_back(name + ".stddev", entry.dist->stddev());
        break;
      case Kind::Histogram:
        out.emplace_back(name + ".count",
                         static_cast<double>(entry.hist->count()));
        out.emplace_back(name + ".mean", entry.hist->mean());
        out.emplace_back(name + ".stddev", entry.hist->stddev());
        out.emplace_back(
            name + ".overflow",
            static_cast<double>(entry.hist->bucket(entry.hist->size() - 1)));
        break;
      case Kind::Log2Hist:
        out.emplace_back(name + ".count",
                         static_cast<double>(entry.log2Hist->count()));
        out.emplace_back(name + ".min",
                         static_cast<double>(entry.log2Hist->min()));
        out.emplace_back(name + ".max",
                         static_cast<double>(entry.log2Hist->max()));
        out.emplace_back(name + ".mean", entry.log2Hist->mean());
        out.emplace_back(name + ".p50", entry.log2Hist->p50());
        out.emplace_back(name + ".p90", entry.log2Hist->p90());
        out.emplace_back(name + ".p99", entry.log2Hist->p99());
        break;
    }
}

StatsRegistry::Snapshot
StatsRegistry::snapshot() const
{
    Snapshot out;
    out.reserve(entries.size());
    // `entries` iterates name-sorted; expansion appends suffixed
    // leaves in a fixed order, so re-sort to keep the flat view
    // strictly ordered regardless of how expansions interleave.
    for (const auto &[name, entry] : entries)
        expand(name, entry, out);
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return out;
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &[name, value] : snapshot())
        out.push_back(name);
    return out;
}

bool
StatsRegistry::has(const std::string &name) const
{
    if (entries.count(name))
        return true;
    for (const auto &[leaf, value] : snapshot())
        if (leaf == name)
            return true;
    return false;
}

double
StatsRegistry::value(const std::string &name) const
{
    auto it = entries.find(name);
    if (it != entries.end() && it->second.kind != Kind::Distribution &&
        it->second.kind != Kind::Histogram &&
        it->second.kind != Kind::Log2Hist) {
        Snapshot one;
        expand(name, it->second, one);
        return one.front().second;
    }
    for (const auto &[leaf, v] : snapshot())
        if (leaf == name)
            return v;
    fatal("StatsRegistry: unknown stat '%s'", name.c_str());
}

std::string
StatsRegistry::description(const std::string &name) const
{
    auto it = entries.find(name);
    return it != entries.end() ? it->second.desc : std::string();
}

std::string
StatsRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : snapshot())
        os << name << " = " << jsonNumber(value) << "\n";
    return os.str();
}

void
StatsRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[name, value] : snapshot())
        w.field(name, value);
    w.endObject();
}

std::string
csvField(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
writeCsv(std::ostream &os, const StatsRegistry::Snapshot &snapshot)
{
    os << "stat,value\n";
    for (const auto &[name, value] : snapshot)
        os << csvField(name) << ',' << jsonNumber(value) << '\n';
}

} // namespace arl::obs
