/**
 * @file
 * gem5-style hierarchical statistics registry.
 *
 * Modules register named stats — live counters/gauges they own,
 * formulas evaluated lazily (IPC, hit rates), and RunningStat /
 * Histogram accumulators — under dotted hierarchical names
 * ("ooo.lsq.forwarded_loads", "predict.arpt.accuracy_pct",
 * "cache.lvc.hits").  The registry resolves everything to a flat,
 * deterministically sorted (name, value) snapshot that the JSON/CSV
 * serializers and the interval sampler consume.
 *
 * Registration can reference storage the caller keeps alive (the
 * usual case: a simulator's counters) or ask the registry to own the
 * storage (benches and tools that tally after the fact).
 */

#ifndef ARL_OBS_STATS_REGISTRY_HH
#define ARL_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "obs/histogram.hh"

namespace arl::obs
{

class JsonWriter;

/** Hierarchical name → value registry with deterministic dumps. */
class StatsRegistry
{
  public:
    /** Flat, name-sorted view of every leaf stat. */
    using Snapshot = std::vector<std::pair<std::string, double>>;

    // ---- registration against caller-owned storage ----

    /** Register a live counter; the caller keeps @p value alive. */
    void addCounter(const std::string &name, const std::uint64_t *value,
                    const std::string &desc = "");

    /** Register a live floating-point gauge. */
    void addGauge(const std::string &name, const double *value,
                  const std::string &desc = "");

    /** Register a formula evaluated at snapshot time (IPC, rates). */
    void addFormula(const std::string &name,
                    std::function<double()> formula,
                    const std::string &desc = "");

    /**
     * Register a RunningStat; expands to the leaves
     * name.count / name.mean / name.stddev.
     */
    void addDistribution(const std::string &name, const RunningStat *stat,
                         const std::string &desc = "");

    /**
     * Register a Histogram; expands to the leaves
     * name.count / name.mean / name.stddev / name.overflow
     * (overflow = samples clamped into the last bucket).
     */
    void addHistogram(const std::string &name, const Histogram *hist,
                      const std::string &desc = "");

    /**
     * Register a Log2Histogram; expands to the leaves
     * name.count / name.min / name.max / name.mean /
     * name.p50 / name.p90 / name.p99.
     */
    void addLog2Histogram(const std::string &name,
                          const Log2Histogram *hist,
                          const std::string &desc = "");

    // ---- registry-owned storage ----

    /**
     * Counter owned by the registry (stable address; created on first
     * use, same reference on repeated calls with the same name).
     */
    std::uint64_t &counter(const std::string &name,
                           const std::string &desc = "");

    /** Gauge owned by the registry. */
    double &gauge(const std::string &name, const std::string &desc = "");

    // ---- queries ----

    /** True when @p name resolves to a leaf stat. */
    bool has(const std::string &name) const;

    /** Value of leaf stat @p name; fatal when unknown. */
    double value(const std::string &name) const;

    /** Description given at registration ("" for expanded leaves). */
    std::string description(const std::string &name) const;

    /** Registered entries (before distribution/histogram expansion). */
    std::size_t size() const { return entries.size(); }

    /** All leaf names, sorted. */
    std::vector<std::string> names() const;

    /** Evaluate every leaf stat; sorted by name, deterministic. */
    Snapshot snapshot() const;

    /** Plain-text "name = value" lines, sorted (debug dump). */
    std::string dump() const;

    /** Emit all leaf stats as one JSON object value. */
    void writeJson(JsonWriter &w) const;

  private:
    enum class Kind : std::uint8_t
    {
        Counter,
        Gauge,
        Formula,
        Distribution,
        Histogram,
        Log2Hist
    };

    struct Entry
    {
        Kind kind = Kind::Counter;
        std::string desc;
        const std::uint64_t *counter = nullptr;
        const double *gauge = nullptr;
        std::function<double()> formula;
        const RunningStat *dist = nullptr;
        const Histogram *hist = nullptr;
        const Log2Histogram *log2Hist = nullptr;
    };

    void insert(const std::string &name, Entry entry);
    void expand(const std::string &name, const Entry &entry,
                Snapshot &out) const;

    std::map<std::string, Entry> entries;

    // Deques give owned counters/gauges stable addresses.
    std::deque<std::uint64_t> ownedCounters;
    std::deque<double> ownedGauges;
    std::map<std::string, std::uint64_t *> ownedCounterIndex;
    std::map<std::string, double *> ownedGaugeIndex;
};

/** Serialize a snapshot as "stat,value" CSV rows (with header). */
void writeCsv(std::ostream &os, const StatsRegistry::Snapshot &snapshot);

/** Quote one CSV field when it contains separators or quotes. */
std::string csvField(const std::string &field);

} // namespace arl::obs

#endif // ARL_OBS_STATS_REGISTRY_HH
