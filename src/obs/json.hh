/**
 * @file
 * Minimal JSON support for the observability subsystem: a streaming
 * writer (used by the stats/report serializers) and a small DOM +
 * recursive-descent parser (used by the unit tests and the CI smoke
 * check to validate emitted documents without external dependencies).
 */

#ifndef ARL_OBS_JSON_HH
#define ARL_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace arl::obs
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/**
 * Render a double the way the writer does: integral values within
 * the exactly-representable range print without a fraction, other
 * finite values with enough digits to round-trip, non-finite values
 * as null (JSON has no NaN/Inf).
 */
std::string jsonNumber(double value);

/**
 * Streaming JSON writer with an explicit structure stack.
 *
 * Usage: beginObject()/key()/value()/endObject().  Commas, newlines
 * and indentation are handled internally; misuse (a value with no
 * pending key inside an object, unbalanced end calls) panics.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, unsigned indent_width = 2);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit the key of the next object member. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** True once every begin has been balanced by an end. */
    bool complete() const { return stack.empty() && wroteRoot; }

  private:
    void preValue();
    void indent();
    void raw(std::string_view text);

    struct Level
    {
        bool array = false;
        bool first = true;
    };

    std::ostream &os;
    unsigned indentWidth;
    std::vector<Level> stack;
    bool pendingKey = false;
    bool wroteRoot = false;
};

/** Parsed JSON value (small DOM for tests and validation). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Members in document order (duplicates preserved). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** First member named @p key, or nullptr. */
    const JsonValue *find(std::string_view key) const;
};

/**
 * Parse a complete JSON document (trailing whitespace allowed,
 * trailing garbage rejected).
 * @return true on success; on failure @p error (when given) holds a
 *         message with the byte offset.
 */
bool jsonParse(std::string_view text, JsonValue &out,
               std::string *error = nullptr);

} // namespace arl::obs

#endif // ARL_OBS_JSON_HH
