#include "obs/report.hh"

#include <fstream>

#include "common/logging.hh"
#include "obs/hooks.hh"
#include "obs/json.hh"

namespace arl::obs
{

RunRecord
RunRecord::fromHooks(const std::string &workload, const std::string &config,
                     const Hooks &hooks)
{
    RunRecord record;
    record.workload = workload;
    record.config = config;
    record.stats =
        hooks.finalized ? hooks.finalSnapshot : hooks.registry.snapshot();
    // A streaming sampler keeps no rows in memory; its samples are
    // already on disk, so the report omits the intervals section
    // (every == 0) rather than serializing empty arrays.
    if (hooks.sampler && !hooks.sampler->streaming()) {
        record.intervals.every = hooks.sampler->every();
        record.intervals.names = hooks.sampler->names();
        record.intervals.samples = hooks.sampler->samples();
        record.intervals.deltas = hooks.sampler->deltas();
    }
    return record;
}

namespace
{

void
writeSamples(JsonWriter &w, const std::vector<IntervalSampler::Sample> &ss)
{
    w.beginArray();
    for (const auto &s : ss) {
        w.beginObject();
        w.field("at", s.at);
        w.key("values").beginArray();
        for (double v : s.values)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();
}

} // namespace

void
Report::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema_version", 1);
    w.field("tool", tool);
    w.field("command", command);
    if (hasMeta) {
        w.key("meta");
        writeHostMetaJson(w, meta);
    }
    w.key("runs").beginArray();
    for (const RunRecord &run : runs) {
        w.beginObject();
        w.field("workload", run.workload);
        w.field("config", run.config);
        w.key("stats").beginObject();
        for (const auto &[name, value] : run.stats)
            w.field(name, value);
        w.endObject();
        if (run.intervals.every) {
            w.key("intervals").beginObject();
            w.field("every", run.intervals.every);
            w.key("names").beginArray();
            for (const std::string &name : run.intervals.names)
                w.value(name);
            w.endArray();
            w.key("samples");
            writeSamples(w, run.intervals.samples);
            w.key("deltas");
            writeSamples(w, run.intervals.deltas);
            w.endObject();
        }
        if (run.sampling.enabled) {
            const SamplingReport &s = run.sampling;
            w.key("sampling").beginObject();
            w.field("interval_insts", s.intervalInsts);
            w.field("clusters", s.clusters);
            w.field("clusters_requested", s.clustersRequested);
            w.field("intervals", s.intervals);
            w.field("total_insts", s.totalInsts);
            w.field("simulated_insts", s.simulatedInsts);
            w.field("coverage_pct", s.coveragePct);
            w.field("est_cpi", s.estCpi);
            w.field("est_error_pct", s.estErrorPct);
            if (s.measuredErrorPct >= 0.0)
                w.field("measured_error_pct", s.measuredErrorPct);
            w.key("representatives").beginArray();
            for (const SamplingReport::Representative &rep :
                 s.representatives) {
                w.beginObject();
                w.field("cluster", rep.cluster);
                w.field("start", rep.start);
                w.field("length", rep.length);
                w.field("warmup", rep.warmup);
                w.field("weight", rep.weight);
                w.field("cycles", rep.cycles);
                w.field("cpi", rep.cpi);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

void
Report::writeCsv(std::ostream &os) const
{
    os << "workload,config,stat,value\n";
    for (const RunRecord &run : runs)
        for (const auto &[name, value] : run.stats)
            os << csvField(run.workload) << ',' << csvField(run.config)
               << ',' << csvField(name) << ',' << jsonNumber(value)
               << '\n';
}

bool
Report::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os.is_open()) {
        warn("cannot write stats file '%s'", path.c_str());
        return false;
    }
    writeJson(os);
    return true;
}

bool
Report::writeCsvFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os.is_open()) {
        warn("cannot write stats file '%s'", path.c_str());
        return false;
    }
    writeCsv(os);
    return true;
}

} // namespace arl::obs
