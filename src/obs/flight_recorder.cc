#include "obs/flight_recorder.hh"

#include <csignal>

#include <atomic>

#include "obs/telemetry.hh"

namespace arl::obs
{

namespace
{

std::atomic<TelemetryChannel *> armedChannel{nullptr};
bool handlersInstalled = false;

const int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};

extern "C" void
flightRecorderHandler(int signo)
{
    TelemetryChannel *chan =
        armedChannel.load(std::memory_order_acquire);
    if (chan)
        chan->dumpBlackBox(signo);
    // Restore the default disposition and re-raise so the process
    // still dies with the original signal (core dumps, wait status
    // and CI reporting all keep working).
    ::signal(signo, SIG_DFL);
    ::raise(signo);
}

} // namespace

void
armFlightRecorder(TelemetryChannel *channel)
{
    armedChannel.store(channel, std::memory_order_release);
    if (handlersInstalled)
        return;
    struct sigaction sa;
    sa.sa_handler = flightRecorderHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESETHAND: the handler restores SIG_DFL itself after the
    // dump, and keeping the disposition installed makes arming
    // idempotent across channels.
    sa.sa_flags = 0;
    for (int signo : kFatalSignals)
        ::sigaction(signo, &sa, nullptr);
    handlersInstalled = true;
}

void
disarmFlightRecorder(TelemetryChannel *channel)
{
    TelemetryChannel *expected = channel;
    armedChannel.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_acq_rel);
}

} // namespace arl::obs
