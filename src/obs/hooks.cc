#include "obs/hooks.hh"

#include <fstream>

#include "common/logging.hh"

namespace arl::obs
{

void
Hooks::startSampling()
{
    if (intervalEvery == 0 || sampler)
        return;
    sampler = std::make_unique<IntervalSampler>(registry, intervalEvery);
    // Re-attached on every (re)start so Experiment::timingStudy's
    // restartSampling() keeps streaming to the same sink.
    if (intervalStream)
        sampler->setStream(intervalStream);
}

void
Hooks::restartSampling()
{
    sampler.reset();
    startSampling();
}

bool
Hooks::openTrace(const std::string &path, std::uint64_t max_events)
{
    auto file = std::make_unique<std::ofstream>(path);
    if (!file->is_open()) {
        warn("cannot open pipetrace file '%s'", path.c_str());
        return false;
    }
    traceFile = std::move(file);
    tracer = std::make_unique<PipeTracer>(*traceFile, max_events);
    return true;
}

bool
Hooks::openChromeTrace(const std::string &path, std::uint64_t max_insts)
{
    auto file = std::make_unique<std::ofstream>(path);
    if (!file->is_open()) {
        warn("cannot open chrome trace file '%s'", path.c_str());
        return false;
    }
    chromeFile = std::move(file);
    chrome = std::make_unique<ChromeTracer>(*chromeFile, max_insts);
    return true;
}

void
Hooks::finishChromeTrace(const std::string &process_name)
{
    if (!chrome)
        return;
    if (sampler)
        chrome->counterTracks(*sampler);
    chrome->finish(process_name);
    chrome.reset();
    chromeFile.reset();
}

} // namespace arl::obs
