#include "obs/sampler.hh"

#include <ostream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace arl::obs
{

IntervalSampler::IntervalSampler(const StatsRegistry &reg,
                                 std::uint64_t every)
    : registry(reg), interval(every), nextAt(every)
{
    ARL_ASSERT(every > 0, "zero sampling interval");
    for (auto &[name, value] : registry.snapshot()) {
        statNames.push_back(name);
        base.push_back(value);
    }
}

std::vector<double>
IntervalSampler::sampleValues() const
{
    // Evaluate in frozen-name order; stats registered after
    // construction are deliberately excluded so columns stay stable.
    std::vector<double> values;
    values.reserve(statNames.size());
    StatsRegistry::Snapshot snap = registry.snapshot();
    std::size_t cursor = 0;
    for (const std::string &name : statNames) {
        while (cursor < snap.size() && snap[cursor].first != name)
            ++cursor;
        ARL_ASSERT(cursor < snap.size(),
                   "sampled stat '%s' disappeared", name.c_str());
        values.push_back(snap[cursor].second);
    }
    return values;
}

void
IntervalSampler::setStream(std::ostream *os)
{
    ARL_ASSERT(taken.empty(), "cannot switch to streaming mid-run");
    stream = os;
    if (!stream)
        return;
    *stream << "at";
    for (const std::string &name : statNames)
        *stream << ',' << name;
    *stream << '\n';
    stream->flush();
}

void
IntervalSampler::capture(std::uint64_t committed)
{
    if (stream) {
        // Streaming sink: one row per sample, flushed immediately so
        // a long run is observable (and crash-durable) as it goes;
        // nothing accumulates in memory.
        std::vector<double> values = sampleValues();
        *stream << committed;
        for (double v : values)
            *stream << ',' << jsonNumber(v);
        *stream << '\n';
        stream->flush();
        lastStreamedAt = committed;
        return;
    }
    taken.push_back({committed, sampleValues()});
}

void
IntervalSampler::tick(std::uint64_t committed)
{
    if (committed < nextAt)
        return;
    capture(committed);
    // One sample per crossing even when several boundaries were
    // passed at once (e.g. a batched commit burst).
    nextAt = (committed / interval + 1) * interval;
}

void
IntervalSampler::flush(std::uint64_t committed)
{
    // Only sample when there is progress past the last row; a run
    // whose length is an exact multiple of the interval already has
    // its final row from tick().
    if (committed == 0)
        return;
    std::uint64_t lastAt =
        stream ? lastStreamedAt : (taken.empty() ? 0 : taken.back().at);
    if (lastAt >= committed)
        return;
    capture(committed);
    nextAt = (committed / interval + 1) * interval;
}

std::vector<IntervalSampler::Sample>
IntervalSampler::deltas() const
{
    std::vector<Sample> out;
    out.reserve(taken.size());
    const std::vector<double> *prev = &base;
    for (const Sample &s : taken) {
        Sample d;
        d.at = s.at;
        d.values.reserve(s.values.size());
        for (std::size_t i = 0; i < s.values.size(); ++i)
            d.values.push_back(s.values[i] - (*prev)[i]);
        out.push_back(std::move(d));
        prev = &s.values;
    }
    return out;
}

} // namespace arl::obs
