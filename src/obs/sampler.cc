#include "obs/sampler.hh"

#include "common/logging.hh"

namespace arl::obs
{

IntervalSampler::IntervalSampler(const StatsRegistry &reg,
                                 std::uint64_t every)
    : registry(reg), interval(every), nextAt(every)
{
    ARL_ASSERT(every > 0, "zero sampling interval");
    for (auto &[name, value] : registry.snapshot()) {
        statNames.push_back(name);
        base.push_back(value);
    }
}

std::vector<double>
IntervalSampler::sampleValues() const
{
    // Evaluate in frozen-name order; stats registered after
    // construction are deliberately excluded so columns stay stable.
    std::vector<double> values;
    values.reserve(statNames.size());
    StatsRegistry::Snapshot snap = registry.snapshot();
    std::size_t cursor = 0;
    for (const std::string &name : statNames) {
        while (cursor < snap.size() && snap[cursor].first != name)
            ++cursor;
        ARL_ASSERT(cursor < snap.size(),
                   "sampled stat '%s' disappeared", name.c_str());
        values.push_back(snap[cursor].second);
    }
    return values;
}

void
IntervalSampler::tick(std::uint64_t committed)
{
    if (committed < nextAt)
        return;
    taken.push_back({committed, sampleValues()});
    // One sample per crossing even when several boundaries were
    // passed at once (e.g. a batched commit burst).
    nextAt = (committed / interval + 1) * interval;
}

void
IntervalSampler::flush(std::uint64_t committed)
{
    // Only sample when there is progress past the last row; a run
    // whose length is an exact multiple of the interval already has
    // its final row from tick().
    if (committed == 0)
        return;
    if (!taken.empty() && taken.back().at >= committed)
        return;
    taken.push_back({committed, sampleValues()});
    nextAt = (committed / interval + 1) * interval;
}

std::vector<IntervalSampler::Sample>
IntervalSampler::deltas() const
{
    std::vector<Sample> out;
    out.reserve(taken.size());
    const std::vector<double> *prev = &base;
    for (const Sample &s : taken) {
        Sample d;
        d.at = s.at;
        d.values.reserve(s.values.size());
        for (std::size_t i = 0; i < s.values.size(); ++i)
            d.values.push_back(s.values[i] - (*prev)[i]);
        out.push_back(std::move(d));
        prev = &s.values;
    }
    return out;
}

} // namespace arl::obs
