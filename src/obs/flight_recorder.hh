/**
 * @file
 * Crash-safe flight recorder: installs fatal-signal handlers that
 * dump the armed TelemetryChannel's black-box ring as a postamble to
 * the telemetry file before re-raising the signal with its default
 * disposition.  `ARL_ASSERT`/`panic()` end in abort(), so the SIGABRT
 * handler covers assertion failures without touching the logging
 * layer.
 *
 * The handler does nothing but atomic loads and write() — it is
 * async-signal-safe by construction (see TelemetryChannel::
 * dumpBlackBox).
 */

#ifndef ARL_OBS_FLIGHT_RECORDER_HH
#define ARL_OBS_FLIGHT_RECORDER_HH

namespace arl::obs
{

class TelemetryChannel;

/**
 * Arm the flight recorder on @p channel: install handlers for
 * SIGSEGV, SIGBUS, SIGILL, SIGFPE and SIGABRT (idempotent) and point
 * them at the channel.  Only one channel can be armed at a time; a
 * second call re-points the handlers.
 */
void armFlightRecorder(TelemetryChannel *channel);

/**
 * Disarm if @p channel is the armed one (no-op otherwise).  Called
 * automatically from ~TelemetryChannel so the handler can never see
 * a dangling pointer.  Signal dispositions are left installed; with
 * no armed channel the handler just re-raises.
 */
void disarmFlightRecorder(TelemetryChannel *channel);

} // namespace arl::obs

#endif // ARL_OBS_FLIGHT_RECORDER_HH
