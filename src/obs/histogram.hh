/**
 * @file
 * Log2-bucketed histogram stat.
 *
 * Latency-style distributions (load-to-use cycles, queue occupancy,
 * burst lengths) span several orders of magnitude, so fixed-width
 * buckets either blur the short tail or truncate the long one.  A
 * power-of-two bucketing keeps constant relative resolution with a
 * fixed 66-slot footprint: bucket 0 holds the value 0, bucket i >= 1
 * holds [2^(i-1), 2^i).
 *
 * Percentiles are extracted deterministically: walk the cumulative
 * counts to the target rank, then interpolate linearly inside the
 * bucket's value range.  The exact min/max are tracked separately and
 * clamp the interpolation, so single-sample and at-the-edge queries
 * return exact values.  Everything is plain integer state — merging,
 * copying, and resetting are trivial, and accumulation never affects
 * simulated timing.
 *
 * Registered into a StatsRegistry via addLog2Histogram(), which
 * expands to the leaves .count/.min/.max/.mean/.p50/.p90/.p99.
 */

#ifndef ARL_OBS_HISTOGRAM_HH
#define ARL_OBS_HISTOGRAM_HH

#include <cstdint>

namespace arl::obs
{

/** Power-of-two-bucketed histogram with percentile extraction. */
class Log2Histogram
{
  public:
    /** Bucket 0 plus one bucket per bit of a 64-bit value. */
    static constexpr unsigned NumBuckets = 65;

    /** Bucket index of @p value (0 for 0, floor(log2(v))+1 else). */
    static unsigned bucketOf(std::uint64_t value)
    {
        unsigned bucket = 0;
        while (value) {
            ++bucket;
            value >>= 1;
        }
        return bucket;
    }

    /** Smallest value of @p bucket. */
    static std::uint64_t bucketLow(unsigned bucket)
    {
        return bucket ? std::uint64_t{1} << (bucket - 1) : 0;
    }

    /** Largest value of @p bucket. */
    static std::uint64_t bucketHigh(unsigned bucket)
    {
        if (bucket == 0)
            return 0;
        if (bucket >= 64)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << bucket) - 1;
    }

    void
    add(std::uint64_t value)
    {
        ++buckets_[bucketOf(value)];
        ++count_;
        sum_ += value;
        if (count_ == 1 || value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Samples recorded in @p bucket. */
    std::uint64_t
    bucketCount(unsigned bucket) const
    {
        return bucket < NumBuckets ? buckets_[bucket] : 0;
    }

    /**
     * Estimate the @p p quantile (0 < p <= 1): walk the cumulative
     * bucket counts to rank ceil(p * count), place the k-th of the
     * bucket's n samples at (k-1)/(n-1) across the bucket's
     * [low, high] value range (its low edge when n == 1), and clamp
     * to the exact observed [min, max].  The extreme ranks skip
     * interpolation entirely: rank 1 is the tracked min and rank
     * count is the tracked max.  0 when empty.
     * Deterministic — identical sample streams always produce
     * identical results.
     */
    double percentile(double p) const;

    double p50() const { return percentile(0.50); }
    double p90() const { return percentile(0.90); }
    double p99() const { return percentile(0.99); }

    void
    reset()
    {
        for (unsigned i = 0; i < NumBuckets; ++i)
            buckets_[i] = 0;
        count_ = sum_ = min_ = max_ = 0;
    }

  private:
    std::uint64_t buckets_[NumBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace arl::obs

#endif // ARL_OBS_HISTOGRAM_HH
