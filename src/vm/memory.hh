/**
 * @file
 * Sparse paged guest memory.
 *
 * Pages (4 KB) are allocated on first touch, so the 2 GB guest
 * address space costs only what the workload actually uses.  All
 * multi-byte accesses are little-endian and must be naturally
 * aligned (the ISA only generates aligned accesses; misalignment is
 * an arl bug and panics).
 */

#ifndef ARL_VM_MEMORY_HH
#define ARL_VM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "vm/layout.hh"

namespace arl::vm
{

/** Sparse, page-granular guest physical memory. */
class SparseMemory
{
  public:
    /** Read one byte (0 for never-written locations). */
    std::uint8_t read8(Addr addr) const;

    /** Read a naturally aligned 16-bit little-endian value. */
    std::uint16_t read16(Addr addr) const;

    /** Read a naturally aligned 32-bit little-endian value. */
    std::uint32_t read32(Addr addr) const;

    /** Write one byte. */
    void write8(Addr addr, std::uint8_t value);

    /** Write a naturally aligned 16-bit value. */
    void write16(Addr addr, std::uint16_t value);

    /** Write a naturally aligned 32-bit value. */
    void write32(Addr addr, std::uint32_t value);

    /** Bulk copy into guest memory (no alignment requirement). */
    void writeBlock(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Bulk copy out of guest memory. */
    void readBlock(Addr addr, std::uint8_t *data, std::size_t len) const;

    /** Number of pages currently materialised. */
    std::size_t pageCount() const { return pages.size(); }

    /** Drop every page (memory reads as zero again). */
    void clear() { pages.clear(); }

  private:
    using Page = std::array<std::uint8_t, layout::PageBytes>;

    /** Page for reading; nullptr when the page was never written. */
    const Page *findPage(Addr addr) const;

    /** Page for writing; allocates (zero-filled) on first touch. */
    Page &touchPage(Addr addr);

    std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages;
};

} // namespace arl::vm

#endif // ARL_VM_MEMORY_HH
