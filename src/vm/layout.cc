#include "vm/layout.hh"

namespace arl::vm
{

std::string
regionName(Region region)
{
    switch (region) {
      case Region::Data:
        return "data";
      case Region::Heap:
        return "heap";
      case Region::Stack:
        return "stack";
      case Region::Text:
        return "text";
      case Region::Unknown:
        return "unknown";
    }
    return "invalid";
}

} // namespace arl::vm
