#include "vm/memory.hh"

#include <cstring>

#include "common/logging.hh"

namespace arl::vm
{

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = pages.find(addr >> layout::PageShift);
    return it == pages.end() ? nullptr : it->second.get();
}

SparseMemory::Page &
SparseMemory::touchPage(Addr addr)
{
    auto &slot = pages[addr >> layout::PageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

std::uint8_t
SparseMemory::read8(Addr addr) const
{
    const Page *page = findPage(addr);
    if (!page)
        return 0;
    return (*page)[addr & (layout::PageBytes - 1)];
}

std::uint16_t
SparseMemory::read16(Addr addr) const
{
    ARL_ASSERT((addr & 1) == 0, "misaligned 16-bit read at 0x%08x", addr);
    const Page *page = findPage(addr);
    if (!page)
        return 0;
    std::uint16_t value;
    std::memcpy(&value, page->data() + (addr & (layout::PageBytes - 1)),
                sizeof(value));
    return value;
}

std::uint32_t
SparseMemory::read32(Addr addr) const
{
    ARL_ASSERT((addr & 3) == 0, "misaligned 32-bit read at 0x%08x", addr);
    const Page *page = findPage(addr);
    if (!page)
        return 0;
    std::uint32_t value;
    std::memcpy(&value, page->data() + (addr & (layout::PageBytes - 1)),
                sizeof(value));
    return value;
}

void
SparseMemory::write8(Addr addr, std::uint8_t value)
{
    touchPage(addr)[addr & (layout::PageBytes - 1)] = value;
}

void
SparseMemory::write16(Addr addr, std::uint16_t value)
{
    ARL_ASSERT((addr & 1) == 0, "misaligned 16-bit write at 0x%08x", addr);
    Page &page = touchPage(addr);
    std::memcpy(page.data() + (addr & (layout::PageBytes - 1)), &value,
                sizeof(value));
}

void
SparseMemory::write32(Addr addr, std::uint32_t value)
{
    ARL_ASSERT((addr & 3) == 0, "misaligned 32-bit write at 0x%08x", addr);
    Page &page = touchPage(addr);
    std::memcpy(page.data() + (addr & (layout::PageBytes - 1)), &value,
                sizeof(value));
}

void
SparseMemory::writeBlock(Addr addr, const std::uint8_t *data,
                         std::size_t len)
{
    while (len > 0) {
        std::size_t offset = addr & (layout::PageBytes - 1);
        std::size_t chunk =
            std::min<std::size_t>(len, layout::PageBytes - offset);
        std::memcpy(touchPage(addr).data() + offset, data, chunk);
        addr += static_cast<Addr>(chunk);
        data += chunk;
        len -= chunk;
    }
}

void
SparseMemory::readBlock(Addr addr, std::uint8_t *data,
                        std::size_t len) const
{
    while (len > 0) {
        std::size_t offset = addr & (layout::PageBytes - 1);
        std::size_t chunk =
            std::min<std::size_t>(len, layout::PageBytes - offset);
        const Page *page = findPage(addr);
        if (page)
            std::memcpy(data, page->data() + offset, chunk);
        else
            std::memset(data, 0, chunk);
        addr += static_cast<Addr>(chunk);
        data += chunk;
        len -= chunk;
    }
}

} // namespace arl::vm
