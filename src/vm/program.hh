/**
 * @file
 * Loadable program image: text, initialised data, bss, entry point,
 * and a symbol table.  Produced by the assembler or the
 * ProgramBuilder; consumed by the loader/simulator.
 */

#ifndef ARL_VM_PROGRAM_HH
#define ARL_VM_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"
#include "vm/layout.hh"

namespace arl::vm
{

/** A fully linked ARL-ISA program. */
class Program
{
  public:
    /** Program name (used in reports). */
    std::string name = "anonymous";

    /** First text address (always layout::TextBase in this repo). */
    Addr textBase = layout::TextBase;

    /** Encoded instruction words, textBase-relative. */
    std::vector<Word> text;

    /** Initialised data image, placed at layout::DataBase. */
    std::vector<std::uint8_t> data;

    /** Zero-initialised bytes following the data image. */
    Addr bssBytes = 0;

    /** Entry point PC. */
    Addr entry = layout::TextBase;

    /** Label/symbol table (text and data symbols). */
    std::map<std::string, Addr> symbols;

    /** Address one past the last text word. */
    Addr
    textEnd() const
    {
        return textBase + static_cast<Addr>(text.size() * 4);
    }

    /** Address one past data+bss (page aligned = heap base). */
    Addr heapBase() const;

    /** True when @p pc addresses a valid text word. */
    bool
    validPc(Addr pc) const
    {
        return pc >= textBase && pc < textEnd() && (pc & 3) == 0;
    }

    /** Fetch the encoded word at @p pc (panics on invalid PC). */
    Word fetch(Addr pc) const;

    /**
     * Look up a symbol.
     * @return true and sets @p out when found.
     */
    bool lookup(const std::string &symbol, Addr &out) const;

    /**
     * Decode the whole text segment once (used by the simulators to
     * avoid re-decoding in the hot loop).  Panics on undecodable
     * words — a linked Program must contain only valid encodings.
     */
    std::vector<isa::DecodedInst> decodeAll() const;

    /** Static (per-PC) count of load/store instructions in text. */
    std::size_t staticMemInstructionCount() const;
};

} // namespace arl::vm

#endif // ARL_VM_PROGRAM_HH
