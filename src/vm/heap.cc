#include "vm/heap.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace arl::vm
{

namespace
{
constexpr Addr Alignment = 8;
} // namespace

HeapAllocator::HeapAllocator(Addr heap_base, Addr heap_limit)
    : base(heap_base), limit(heap_limit), breakAddr(heap_base)
{
    ARL_ASSERT(heap_base < heap_limit);
}

Addr
HeapAllocator::malloc(Addr bytes)
{
    if (bytes == 0)
        bytes = 1;
    bytes = static_cast<Addr>(roundUp(bytes, Alignment));

    // First fit over the free list.
    for (auto it = freeBlocks.begin(); it != freeBlocks.end(); ++it) {
        auto [start, size] = *it;
        if (size < bytes)
            continue;
        freeBlocks.erase(it);
        if (size > bytes)
            freeBlocks.emplace(start + bytes, size - bytes);
        allocated.emplace(start, bytes);
        inUse += bytes;
        return start;
    }

    // Extend the break.
    if (breakAddr + bytes > limit || breakAddr + bytes < breakAddr)
        return 0;
    Addr start = breakAddr;
    breakAddr += bytes;
    allocated.emplace(start, bytes);
    inUse += bytes;
    return start;
}

void
HeapAllocator::free(Addr ptr)
{
    auto it = allocated.find(ptr);
    if (it == allocated.end())
        panic("HeapAllocator::free: 0x%08x was not allocated", ptr);
    Addr size = it->second;
    allocated.erase(it);
    inUse -= size;
    auto [fit, inserted] = freeBlocks.emplace(ptr, size);
    ARL_ASSERT(inserted);
    coalesce(fit);
}

Addr
HeapAllocator::sbrk(Addr bytes)
{
    bytes = static_cast<Addr>(roundUp(bytes, Alignment));
    if (breakAddr + bytes > limit || breakAddr + bytes < breakAddr)
        return 0;
    Addr old = breakAddr;
    breakAddr += bytes;
    return old;
}

void
HeapAllocator::coalesce(std::map<Addr, Addr>::iterator it)
{
    // Merge with the successor.
    auto next = std::next(it);
    if (next != freeBlocks.end() && it->first + it->second == next->first) {
        it->second += next->second;
        freeBlocks.erase(next);
    }
    // Merge with the predecessor.
    if (it != freeBlocks.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            freeBlocks.erase(it);
        }
    }
}

} // namespace arl::vm
