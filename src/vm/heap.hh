/**
 * @file
 * Host-side heap allocator backing the guest's malloc/free syscalls.
 *
 * The paper's benchmarks obtain heap storage through libc malloc on
 * top of sbrk; we model the same: a first-fit free list with
 * coalescing over a break that grows upward from the end of the data
 * segment.  Bookkeeping lives host-side (the guest never reads the
 * allocator metadata), which keeps guest memory traffic equal to the
 * *application's* accesses — the quantity the paper profiles.
 * Returned blocks are 8-byte aligned, like a typical 1990s libc.
 */

#ifndef ARL_VM_HEAP_HH
#define ARL_VM_HEAP_HH

#include <cstdint>
#include <map>

#include "common/types.hh"

namespace arl::vm
{

/** First-fit free-list allocator over the guest heap region. */
class HeapAllocator
{
  public:
    /**
     * @param heap_base  lowest heap address (page aligned).
     * @param heap_limit one past the highest usable heap address.
     */
    HeapAllocator(Addr heap_base, Addr heap_limit);

    /**
     * Allocate @p bytes (>=1) of guest heap.
     * @return guest address, or 0 when the heap is exhausted.
     */
    Addr malloc(Addr bytes);

    /**
     * Release a block previously returned by malloc().
     * Panics on a double free or a pointer malloc never returned
     * (guest workload bugs should be loud).
     */
    void free(Addr ptr);

    /**
     * Grow the break by @p bytes (sbrk semantics).
     * @return the previous break, or 0 on exhaustion.
     */
    Addr sbrk(Addr bytes);

    /** Current break (first never-allocated address). */
    Addr brk() const { return breakAddr; }

    /** Total bytes currently allocated to the guest. */
    Addr bytesInUse() const { return inUse; }

    /** Number of live allocations. */
    std::size_t liveBlocks() const { return allocated.size(); }

  private:
    /** Merge adjacent free blocks around the block at @p addr. */
    void coalesce(std::map<Addr, Addr>::iterator it);

    Addr base;
    Addr limit;
    Addr breakAddr;
    Addr inUse = 0;

    /** Free blocks: start -> size. */
    std::map<Addr, Addr> freeBlocks;
    /** Live allocations: start -> size. */
    std::map<Addr, Addr> allocated;
};

} // namespace arl::vm

#endif // ARL_VM_HEAP_HH
