#include "vm/program.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace arl::vm
{

Addr
Program::heapBase() const
{
    Addr end = layout::DataBase + static_cast<Addr>(data.size()) + bssBytes;
    return static_cast<Addr>(roundUp(end, layout::PageBytes));
}

Word
Program::fetch(Addr pc) const
{
    if (!validPc(pc))
        panic("instruction fetch outside text: pc=0x%08x (%s)", pc,
              name.c_str());
    return text[(pc - textBase) >> 2];
}

bool
Program::lookup(const std::string &symbol, Addr &out) const
{
    auto it = symbols.find(symbol);
    if (it == symbols.end())
        return false;
    out = it->second;
    return true;
}

std::vector<isa::DecodedInst>
Program::decodeAll() const
{
    std::vector<isa::DecodedInst> decoded(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (!isa::decode(text[i], decoded[i]))
            panic("undecodable word 0x%08x at pc=0x%08x in %s", text[i],
                  textBase + static_cast<Addr>(i * 4), name.c_str());
    }
    return decoded;
}

std::size_t
Program::staticMemInstructionCount() const
{
    std::size_t count = 0;
    for (Word w : text) {
        isa::DecodedInst inst;
        if (isa::decode(w, inst) && inst.isMem())
            ++count;
    }
    return count;
}

} // namespace arl::vm
