/**
 * @file
 * Guest address-space layout and access-region definitions.
 *
 * The layout follows SimpleScalar's (and the paper's run-time
 * system's) convention:
 *
 *      0x0040'0000  text (instructions)
 *      0x1000'0000  data (static/global variables, then bss)
 *      ...          heap, growing upward from the end of bss
 *      0x2fff'ffff  heap ceiling
 *      0x7fef'c000  stack floor (1 MB guard below the top)
 *      0x7fff'c000  stack top, growing downward
 *
 * An access region R = (L, U) is a contiguous address range; the
 * three regions of interest are Data, Heap, and Stack (§3).  The
 * RegionMap resolves an address to its region; the TLB model's
 * per-page stack bit (§4.2) is derived from the same boundaries.
 */

#ifndef ARL_VM_LAYOUT_HH
#define ARL_VM_LAYOUT_HH

#include <string>

#include "common/types.hh"

namespace arl::vm
{

/** The three data access regions plus sentinels. */
enum class Region : std::uint8_t
{
    Data = 0,   ///< static/global data segment (includes bss)
    Heap = 1,   ///< dynamically allocated storage
    Stack = 2,  ///< procedure frames
    Text = 3,   ///< instruction space (not a data region)
    Unknown = 4 ///< unmapped
};

/** Number of *data* regions (Data/Heap/Stack). */
constexpr unsigned NumDataRegions = 3;

/** Human-readable region name. */
std::string regionName(Region region);

/** Fixed layout constants. */
namespace layout
{
constexpr Addr TextBase = 0x00400000;
constexpr Addr DataBase = 0x10000000;
constexpr Addr HeapCeiling = 0x30000000;
constexpr Addr StackTop = 0x7fffc000;
constexpr Addr StackMaxBytes = 0x01000000;  ///< 16 MB of stack space
constexpr Addr StackFloor = StackTop - StackMaxBytes;
constexpr unsigned PageBytes = 4096;
constexpr unsigned PageShift = 12;
} // namespace layout

/**
 * Resolves addresses to regions for one loaded program.
 *
 * Boundaries are fixed at load time except the heap break, which
 * grows with sbrk; classification deliberately uses the *static*
 * interval bounds (data ends where heap begins; everything at or
 * above the stack floor is stack), mirroring how the paper's TLB
 * stack bit is assigned per page when the page is allocated.
 */
class RegionMap
{
  public:
    RegionMap() = default;

    /**
     * @param heap_base first heap address (end of data+bss, page
     *                  aligned); data is [DataBase, heap_base).
     */
    explicit RegionMap(Addr heap_base) : heapBase(heap_base) {}

    /** Classify @p addr. */
    Region
    classify(Addr addr) const
    {
        if (addr >= layout::StackFloor && addr < layout::StackTop + 4)
            return Region::Stack;
        if (addr >= heapBase && addr < layout::HeapCeiling)
            return Region::Heap;
        if (addr >= layout::DataBase && addr < heapBase)
            return Region::Data;
        if (addr >= layout::TextBase && addr < layout::DataBase)
            return Region::Text;
        return Region::Unknown;
    }

    /** True when @p addr lies in the stack region (the TLB bit). */
    bool isStack(Addr addr) const { return classify(addr) == Region::Stack; }

    /** First heap address. */
    Addr heapBaseAddr() const { return heapBase; }

  private:
    Addr heapBase = layout::HeapCeiling;
};

} // namespace arl::vm

#endif // ARL_VM_LAYOUT_HH
