#include "core/experiment.hh"

#include "common/logging.hh"
#include "obs/hooks.hh"
#include "sim/simulator.hh"

namespace arl::core
{

namespace
{

predict::RegionPredictorConfig
makeUnlimited(predict::ContextKind kind, bool use_arpt)
{
    predict::RegionPredictorConfig config;
    config.useArpt = use_arpt;
    config.arpt.entries = 0;  // unlimited
    config.arpt.counterBits = 1;
    config.arpt.context.kind = kind;
    config.arpt.context.gbhBits = 8;
    config.arpt.context.cidBits = 24;
    return config;
}

} // namespace

std::vector<NamedScheme>
figure4Schemes()
{
    return {
        {"STATIC", makeUnlimited(predict::ContextKind::None, false)},
        {"1BIT", makeUnlimited(predict::ContextKind::None, true)},
        {"1BIT-GBH", makeUnlimited(predict::ContextKind::Gbh, true)},
        {"1BIT-CID", makeUnlimited(predict::ContextKind::Cid, true)},
        {"1BIT-HYBRID",
         makeUnlimited(predict::ContextKind::Hybrid, true)},
    };
}

std::vector<sweep::SchemeSpec>
toSweepSchemes(const std::vector<NamedScheme> &schemes)
{
    std::vector<sweep::SchemeSpec> specs;
    specs.reserve(schemes.size());
    for (const NamedScheme &scheme : schemes)
        specs.push_back({scheme.name, scheme.config});
    return specs;
}

std::vector<NamedScheme>
twoBitSchemes()
{
    auto with_bits = [](predict::ContextKind kind) {
        predict::RegionPredictorConfig config = makeUnlimited(kind, true);
        config.arpt.counterBits = 2;
        return config;
    };
    return {
        {"2BIT", with_bits(predict::ContextKind::None)},
        {"2BIT-HYBRID", with_bits(predict::ContextKind::Hybrid)},
    };
}

Experiment::Experiment(std::shared_ptr<const vm::Program> program)
    : prog(std::move(program))
{
    ARL_ASSERT(prog != nullptr);
}

predict::CompilerHints
Experiment::buildHints(InstCount max_insts) const
{
    predict::CompilerHints hints;
    sim::Simulator simulator(prog);
    simulator.run(max_insts, [&hints](const sim::StepInfo &step) {
        hints.observe(step);
    });
    return hints;
}

RegionStudyResult
Experiment::regionStudy(const std::vector<NamedScheme> &schemes,
                        bool use_hints, InstCount max_insts)
{
    RegionStudyResult result;
    result.workload = prog->name;

    predict::CompilerHints hints;
    if (use_hints)
        hints = buildHints(max_insts);

    profile::RegionProfiler region_profiler;
    profile::WindowProfiler win32(32);
    profile::WindowProfiler win64(64);

    std::vector<std::unique_ptr<predict::RegionPredictor>> predictors;
    predictors.reserve(schemes.size());
    for (const NamedScheme &scheme : schemes) {
        predict::RegionPredictorConfig config = scheme.config;
        config.useCompilerHints = use_hints;
        predictors.push_back(std::make_unique<predict::RegionPredictor>(
            config, use_hints ? &hints : nullptr));
    }

    sim::Simulator simulator(prog);
    result.instructions =
        simulator.run(max_insts, [&](const sim::StepInfo &step) {
            region_profiler.observe(step);
            win32.observe(step);
            win64.observe(step);
            for (auto &predictor : predictors)
                predictor->observe(step);
        });

    result.profile = region_profiler.profile();
    result.window32 = win32.stats_summary();
    result.window64 = win64.stats_summary();
    for (std::size_t i = 0; i < schemes.size(); ++i)
        result.schemes.emplace_back(schemes[i].name,
                                    predictors[i]->report());
    return result;
}

TimingResult
Experiment::timingStudy(const ooo::MachineConfig &config,
                        InstCount warmup_insts,
                        InstCount max_insts,
                        obs::Hooks *hooks,
                        std::shared_ptr<sim::StepSource> step_source,
                        InstCount warmup_window) const
{
    ooo::OooCore core(config, prog, std::move(step_source));
    if (hooks)
        core.attachObs(hooks);
    if (warmup_insts)
        core.warmup(warmup_insts, warmup_window);
    // Sampling (re)starts here so the baseline reflects the
    // post-warmup state and the frozen name set includes every stat
    // the core just registered.
    if (hooks)
        hooks->restartSampling();
    TimingResult result = core.run(max_insts);
    // The registry's live entries point into `core`, which dies at
    // return; flush the trailing partial sampling interval, then
    // freeze the values so reports stay valid.
    if (hooks) {
        hooks->finishSampling(result.instructions);
        hooks->finalize();
    }
    return result;
}

arl::sweep::SweepResult
Experiment::sweep(const arl::sweep::SweepSpec &spec)
{
    return arl::sweep::runSweep(spec);
}

std::vector<TimingResult>
Experiment::timingSweep(const std::vector<ooo::MachineConfig> &configs,
                        InstCount warmup_insts,
                        InstCount max_insts) const
{
    std::vector<TimingResult> results;
    results.reserve(configs.size());
    for (const ooo::MachineConfig &config : configs)
        results.push_back(timingStudy(config, warmup_insts, max_insts));
    return results;
}

} // namespace arl::core
