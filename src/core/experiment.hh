/**
 * @file
 * Public facade of the arl library.
 *
 * Most users want one of two things:
 *
 *  - a *region study* (paper §3): run a program functionally and
 *    collect the per-instruction region classification, the
 *    sliding-window interleaving statistics, and the accuracy of a
 *    set of region-prediction schemes;
 *
 *  - a *timing study* (paper §4): run a program through the
 *    out-of-order data-decoupled core under one or more machine
 *    configurations and compare cycle counts.
 *
 * Experiment wraps both behind a small API so examples and benches
 * stay one-screen programs.  Everything underneath is reachable
 * directly (sim::Simulator, predict::RegionPredictor, ooo::OooCore)
 * when finer control is needed.
 */

#ifndef ARL_CORE_EXPERIMENT_HH
#define ARL_CORE_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ooo/config.hh"
#include "ooo/core.hh"
#include "predict/compiler_hints.hh"
#include "predict/region_predictor.hh"
#include "profile/region_profiler.hh"
#include "profile/window_profiler.hh"
#include "sweep/sweep.hh"
#include "vm/program.hh"

namespace arl::obs
{
struct Hooks;
}

namespace arl::core
{

/** A named predictor scheme for a region study. */
struct NamedScheme
{
    std::string name;
    predict::RegionPredictorConfig config;
};

/**
 * The five schemes evaluated in Figure 4: STATIC, 1BIT, 1BIT-GBH,
 * 1BIT-CID, and 1BIT-HYBRID, all with an unlimited ARPT.
 */
std::vector<NamedScheme> figure4Schemes();

/** NamedSchemes as a sweep-engine scheme grid. */
std::vector<sweep::SchemeSpec>
toSweepSchemes(const std::vector<NamedScheme> &schemes);

/** The 2-bit variants (§3.4.1 footnote: consistently inferior). */
std::vector<NamedScheme> twoBitSchemes();

/** Results of a region study. */
struct RegionStudyResult
{
    std::string workload;
    InstCount instructions = 0;
    profile::RegionProfile profile;
    profile::WindowStats window32;
    profile::WindowStats window64;
    /** Per-scheme accuracy reports, in input order. */
    std::vector<std::pair<std::string, predict::PredictorReport>>
        schemes;
};

/** Results of one timing configuration. */
using TimingResult = ooo::OooStats;

/** Facade over the functional and timing simulators. */
class Experiment
{
  public:
    /**
     * @param program the guest program to study (from the workload
     *        registry, the ProgramBuilder, or the assembler).
     */
    explicit Experiment(std::shared_ptr<const vm::Program> program);

    /**
     * Run the §3 profiling methodology: one functional pass feeding
     * the region/window profilers and every scheme in @p schemes.
     *
     * @param use_hints when true, a prior profiling pass builds
     *        compiler hints (§3.5.2) and every scheme consults them.
     * @param max_insts optional instruction cap (0 = to completion).
     */
    RegionStudyResult regionStudy(const std::vector<NamedScheme> &schemes,
                                  bool use_hints = false,
                                  InstCount max_insts = 0);

    /**
     * Run the §4 timing methodology for one machine configuration.
     *
     * @param warmup_insts functional fast-forward before timing.
     * @param max_insts timed instruction budget (0 = to completion).
     * @param hooks optional observability context: the core registers
     *        its stats into @p hooks->registry, (re)starts interval
     *        sampling after warmup, and emits pipeline-trace events
     *        when the hooks carry a tracer.
     * @param step_source optional committed-stream source (e.g. a
     *        trace::ReplaySource); null embeds a live functional
     *        simulator.  Timing is bit-identical either way.
     * @param warmup_window warm microarchitectural state only from
     *        the last N fast-forward instructions (0 = all; see
     *        OooCore::warmup).  The sweep engine combines this with
     *        trace checkpoints for seek-based fast-forward.
     */
    TimingResult timingStudy(
        const ooo::MachineConfig &config, InstCount warmup_insts = 0,
        InstCount max_insts = 0, obs::Hooks *hooks = nullptr,
        std::shared_ptr<sim::StepSource> step_source = nullptr,
        InstCount warmup_window = 0) const;

    /** timingStudy over a set of configurations. */
    std::vector<TimingResult>
    timingSweep(const std::vector<ooo::MachineConfig> &configs,
                InstCount warmup_insts = 0,
                InstCount max_insts = 0) const;

    /** Build profile-based compiler hints (one functional pass). */
    predict::CompilerHints buildHints(InstCount max_insts = 0) const;

    /**
     * Run a declarative workload × config × scheme grid through the
     * parallel sweep engine (src/sweep): each workload is traced
     * once, the grid points replay concurrently, and results merge
     * deterministically — spec.jobs never changes the numbers.
     */
    static arl::sweep::SweepResult
    sweep(const arl::sweep::SweepSpec &spec);

    /** The program under study. */
    const vm::Program &program() const { return *prog; }

  private:
    std::shared_ptr<const vm::Program> prog;
};

} // namespace arl::core

#endif // ARL_CORE_EXPERIMENT_HH
