#include "sampling/sampling.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace arl::sampling
{

std::uint64_t
SamplingPlan::timedInsts() const
{
    std::uint64_t sum = 0;
    for (const Representative &rep : reps)
        sum += rep.length;
    return sum;
}

std::uint64_t
SamplingPlan::simulatedInsts() const
{
    std::uint64_t sum = 0;
    for (const Representative &rep : reps)
        sum += rep.length + rep.detail;
    return sum;
}

std::uint64_t
SamplingPlan::warmupInsts() const
{
    std::uint64_t sum = 0;
    for (const Representative &rep : reps)
        sum += (rep.start - rep.warmupStart) - rep.detail;
    return sum;
}

double
SamplingPlan::coveragePct() const
{
    return totalInsts
               ? 100.0 * static_cast<double>(timedInsts()) / totalInsts
               : 0.0;
}

bool
buildPlan(const trace::InMemoryTrace &t, const SamplingConfig &config,
          InstCount start, InstCount limit, SamplingPlan &out,
          std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (config.intervalInsts == 0)
        return fail("sampling interval must be > 0 instructions");
    if (config.clusters == 0)
        return fail("sampling cluster count must be > 0");
    if (t.size() == 0)
        return fail("cannot sample an empty trace (workload '" +
                    t.program + "' recorded 0 instructions)");
    InstCount end = t.size();
    if (limit && start + limit < end)
        end = start + limit;
    if (start >= end)
        return fail("cannot sample workload '" + t.program +
                    "': the warmup prefix consumes every recorded "
                    "instruction");
    const InstCount total = end - start;

    std::vector<IntervalFeatures> features =
        extractFeatures(t, config.intervalInsts, start, total);
    KMeansConfig kc;
    kc.k = config.clusters;
    kc.seed = config.seed;
    KMeansResult clusters = cluster(features, kc);

    out = SamplingPlan{};
    out.startInst = start;
    out.totalInsts = total;
    out.intervalInsts = config.intervalInsts;
    out.clustersRequested = config.clusters;
    out.intervals = features.size();
    out.reps.reserve(clusters.k);
    for (unsigned c = 0; c < clusters.k; ++c) {
        const IntervalFeatures &iv =
            features[clusters.representatives[c]];
        Representative rep;
        rep.cluster = c;
        rep.interval = clusters.representatives[c];
        rep.start = iv.start;
        rep.length = iv.length;
        rep.warmupStart = iv.start > config.warmupInsts
                              ? iv.start - config.warmupInsts
                              : 0;
        rep.detail = std::min<InstCount>(rep.start - rep.warmupStart,
                                         config.detailInsts);
        for (std::size_t i = 0; i < features.size(); ++i)
            if (clusters.assignment[i] == c)
                rep.clusterInsts += features[i].length;
        rep.weight =
            static_cast<double>(rep.clusterInsts) / total;
        rep.dispersion = clusters.dispersion[c];
        out.reps.push_back(rep);
    }
    return true;
}

SampledEstimate
extrapolate(const SamplingPlan &plan,
            const std::vector<RepMeasurement> &reps)
{
    if (reps.size() != plan.reps.size())
        fatal("sampling: %zu measurements for %zu representatives",
              reps.size(), plan.reps.size());
    SampledEstimate est;
    double err2 = 0.0;
    for (std::size_t c = 0; c < reps.size(); ++c) {
        InstCount insts = reps[c].instructions;
        if (insts == 0)
            fatal("sampling: representative %zu retired 0 "
                  "instructions", c);
        double scale = static_cast<double>(plan.reps[c].clusterInsts) /
                       static_cast<double>(insts);
        double cycles = scale * static_cast<double>(reps[c].cycles);
        est.cycles += cycles;
        // Cluster dispersion (normalised feature distance) as a
        // relative-error proxy for the cluster's cycle contribution.
        err2 += cycles * plan.reps[c].dispersion *
                (cycles * plan.reps[c].dispersion);
    }
    est.cpi = plan.totalInsts
                  ? est.cycles / static_cast<double>(plan.totalInsts)
                  : 0.0;
    est.ipc = est.cycles > 0.0
                  ? static_cast<double>(plan.totalInsts) / est.cycles
                  : 0.0;
    est.estErrorPct =
        est.cycles > 0.0 ? 100.0 * std::sqrt(err2) / est.cycles : 0.0;

    obs::SamplingReport &report = est.report;
    report.enabled = true;
    report.intervalInsts = plan.intervalInsts;
    report.clusters = plan.reps.size();
    report.clustersRequested = plan.clustersRequested;
    report.intervals = plan.intervals;
    report.totalInsts = plan.totalInsts;
    report.simulatedInsts = plan.simulatedInsts();
    report.coveragePct = plan.coveragePct();
    report.estCpi = est.cpi;
    report.estErrorPct = est.estErrorPct;
    for (std::size_t c = 0; c < reps.size(); ++c) {
        obs::SamplingReport::Representative rep;
        rep.cluster = plan.reps[c].cluster;
        rep.start = plan.reps[c].start;
        rep.length = plan.reps[c].length;
        rep.warmup = plan.reps[c].start - plan.reps[c].warmupStart;
        rep.weight = plan.reps[c].weight;
        rep.cycles = static_cast<double>(reps[c].cycles);
        rep.cpi = reps[c].instructions
                      ? static_cast<double>(reps[c].cycles) /
                            static_cast<double>(reps[c].instructions)
                      : 0.0;
        report.representatives.push_back(rep);
    }
    return est;
}

obs::StatsRegistry::Snapshot
mergeSnapshots(const SamplingPlan &plan, const SampledEstimate &est,
               const std::vector<RepMeasurement> &meas,
               const std::vector<obs::StatsRegistry::Snapshot> &reps)
{
    obs::StatsRegistry registry;
    registry.gauge("ooo.cycles") = est.cycles;
    registry.counter("ooo.instructions") = plan.totalInsts;
    registry.gauge("ooo.ipc") = est.ipc;
    registry.gauge("ooo.cpi") = est.cpi;
    // CPI-stack leaves scale with the same per-cluster factors as
    // cycles, so the extrapolated leaves still sum to ooo.cycles (up
    // to floating-point rounding).
    constexpr const char *StackPrefix = "ooo.cpi_stack.";
    for (std::size_t c = 0; c < reps.size(); ++c) {
        double scale = static_cast<double>(plan.reps[c].clusterInsts) /
                       static_cast<double>(meas[c].instructions);
        for (const auto &[name, value] : reps[c])
            if (name.rfind(StackPrefix, 0) == 0)
                registry.gauge(name) += scale * value;
    }
    registry.counter("sampling.clusters") = plan.reps.size();
    registry.counter("sampling.clusters_requested") =
        plan.clustersRequested;
    registry.counter("sampling.intervals") = plan.intervals;
    registry.counter("sampling.interval_insts") = plan.intervalInsts;
    registry.counter("sampling.total_insts") = plan.totalInsts;
    registry.counter("sampling.timed_insts") = plan.timedInsts();
    registry.counter("sampling.simulated_insts") =
        plan.simulatedInsts();
    registry.counter("sampling.warmup_insts") = plan.warmupInsts();
    registry.gauge("sampling.coverage_pct") = plan.coveragePct();
    registry.gauge("sampling.est_error_pct") = est.estErrorPct;
    registry.gauge("sampling.insts_speedup") =
        plan.simulatedInsts()
            ? static_cast<double>(plan.totalInsts) /
                  static_cast<double>(plan.simulatedInsts())
            : 0.0;
    return registry.snapshot();
}

} // namespace arl::sampling
