/**
 * @file
 * Per-interval region-access feature vectors.
 *
 * Phase-sampled simulation (sampling.hh) needs a cheap fingerprint
 * of each fixed-length trace interval that separates the program's
 * phases by *memory* behaviour — the quantities the paper's §2
 * figures are built from.  Following the "Memory Access Vectors"
 * result (PAPERS.md) that access-signature clustering beats
 * basic-block vectors for memory-system studies, each interval is
 * summarised by per-instruction rates of:
 *
 *   - references into each data region (data / heap / stack),
 *   - the load/store mix,
 *   - the region-transition rate (consecutive data references that
 *     land in *different* regions — the access-region locality the
 *     ARPT exploits, Fig 3),
 *   - branch density and taken rate.
 *
 * All features are rates in [0, 1], so k-means distances are
 * meaningful without per-feature whitening (kmeans.cc still rescales
 * defensively).  Extraction is a single functional pass over the
 * record vector using trace::classifyRecord — no StepInfo
 * reconstitution, no simulator.
 */

#ifndef ARL_SAMPLING_FEATURES_HH
#define ARL_SAMPLING_FEATURES_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "trace/replay.hh"

namespace arl::sampling
{

/** Dimensionality of an interval feature vector. */
constexpr unsigned NumFeatures = 8;

/** Human-readable name of feature dimension @p i. */
const char *featureName(unsigned i);

/** One interval's fingerprint. */
struct IntervalFeatures
{
    /** First record index of the interval. */
    InstCount start = 0;
    /** Records in the interval (the last one may be short). */
    InstCount length = 0;
    /**
     * Feature rates: [0] data refs/inst, [1] heap refs/inst,
     * [2] stack refs/inst, [3] loads/inst, [4] stores/inst,
     * [5] region transitions per data ref, [6] branches/inst,
     * [7] taken per branch.
     */
    std::array<double, NumFeatures> f{};
};

/**
 * Slice records [@p start, @p start + @p limit) of @p t into
 * intervals of @p interval_insts records and fingerprint each one.
 * @p limit = 0 means "to the end of the trace"; a final partial
 * interval is kept with its true length.  IntervalFeatures::start is
 * the absolute record index.  Deterministic: depends only on the
 * record bytes.
 */
std::vector<IntervalFeatures>
extractFeatures(const trace::InMemoryTrace &t, InstCount interval_insts,
                InstCount start = 0, InstCount limit = 0);

} // namespace arl::sampling

#endif // ARL_SAMPLING_FEATURES_HH
