/**
 * @file
 * Phase-sampled timing: plan construction and extrapolation.
 *
 * The paper's SPEC95 runs cover 220-684 M instructions; full OoO
 * timing at that depth is ~100x our budget.  Phase sampling closes
 * the gap the SimPoint way, tuned for this memory study ("Memory
 * Access Vectors", PAPERS.md): fingerprint fixed-length trace
 * intervals with region-access feature vectors (features.hh),
 * cluster them into phases with deterministic k-means (kmeans.hh),
 * detail-simulate only each phase's representative interval behind a
 * functional warmup window, and extrapolate the whole-run CPI stack
 * as the cluster-population-weighted sum of the representatives.
 *
 * The split of labour with the sweep engine: buildPlan() here is
 * pure planning (records in, representative windows out), the sweep
 * runs each representative as an independent job (byte-identical
 * across --jobs values, like every other grid job), and
 * extrapolate() folds the measurements back into one estimate with a
 * dispersion-based confidence interval.  Everything is deterministic
 * in (trace bytes, config).
 */

#ifndef ARL_SAMPLING_SAMPLING_HH
#define ARL_SAMPLING_SAMPLING_HH

#include <string>
#include <vector>

#include "obs/report.hh"
#include "obs/stats_registry.hh"
#include "sampling/kmeans.hh"

namespace arl::sampling
{

/** Phase-sampling knobs (CLI: --sampling --interval-insts --clusters). */
struct SamplingConfig
{
    /** Interval length in instructions. */
    InstCount intervalInsts = 10000;
    /** Requested phase count k (clamped to distinct intervals). */
    unsigned clusters = 6;
    /**
     * Warmup consumed before each representative's timed window
     * (clamped to the records preceding it).  The tail of the window
     * (detailInsts) runs through the detailed pipeline; the rest is
     * functional.
     */
    InstCount warmupInsts = 5000;
    /**
     * Detailed (timed-pipeline, but unmeasured) warmup instructions
     * taken from the tail of the warmup window.  Functional warmup
     * alone leaves each window to start from an empty ROB and cold
     * contention state, which inflates measured CPI by a
     * per-window transient; running the last slice of the warmup
     * through the real pipeline and fencing the statistics
     * afterwards (OooCore::runSample) removes it, SMARTS-style.
     */
    InstCount detailInsts = 3000;
    /** k-means seed. */
    std::uint64_t seed = 0xA8C7;
};

/** One cluster's representative interval, ready to simulate. */
struct Representative
{
    /** Cluster this interval stands for. */
    std::uint32_t cluster = 0;
    /** Interval index within the feature pass. */
    std::size_t interval = 0;
    /** First timed record. */
    InstCount start = 0;
    /** Timed records (== interval length, short for the tail). */
    InstCount length = 0;
    /** Record the warmup window starts at (seek target). */
    InstCount warmupStart = 0;
    /**
     * Instructions of the warmup tail run through the detailed
     * pipeline (start - detail .. start); the prefix from
     * warmupStart is functional.
     */
    InstCount detail = 0;
    /** Instructions across all member intervals of the cluster. */
    std::uint64_t clusterInsts = 0;
    /** clusterInsts / population instructions. */
    double weight = 0.0;
    /** Cluster dispersion (kmeans.hh) — the error-bound input. */
    double dispersion = 0.0;
};

/** The full sampling decision for one workload population. */
struct SamplingPlan
{
    /** First record of the population (the workload's warmup skip). */
    InstCount startInst = 0;
    /** Population: instructions the estimate extrapolates to. */
    InstCount totalInsts = 0;
    InstCount intervalInsts = 0;
    unsigned clustersRequested = 0;
    /** Intervals fingerprinted. */
    std::size_t intervals = 0;
    /** One entry per effective cluster, cluster order. */
    std::vector<Representative> reps;

    /** Timed instructions across representatives. */
    std::uint64_t timedInsts() const;
    /** Detailed-pipeline instructions (timed + detailed warmup). */
    std::uint64_t simulatedInsts() const;
    /** Functional-warmup instructions across representatives. */
    std::uint64_t warmupInsts() const;
    /** timedInsts / totalInsts, percent. */
    double coveragePct() const;
};

/**
 * Build the plan for records [@p start, @p start + @p limit) of
 * @p t (@p limit = 0: to the end of the trace).  @p start is the
 * workload's warmup prefix, so the population matches exactly what a
 * full (non-sampled) timing run measures, and early intervals can
 * warm from the prefix.  @return false with a user-facing message in
 * @p error when the population is empty or the config is degenerate;
 * never fatals.
 */
bool buildPlan(const trace::InMemoryTrace &t,
               const SamplingConfig &config, InstCount start,
               InstCount limit, SamplingPlan &out, std::string *error);

/** What the sweep measured for one representative. */
struct RepMeasurement
{
    Cycle cycles = 0;
    InstCount instructions = 0;
};

/** The extrapolated whole-run estimate. */
struct SampledEstimate
{
    /** Estimated whole-population cycles. */
    double cycles = 0.0;
    double cpi = 0.0;
    double ipc = 0.0;
    /**
     * Dispersion-weighted relative confidence interval, percent: a
     * heuristic error *estimate* from cluster homogeneity, reported
     * alongside (never instead of) the measured error the
     * differential tests pin.
     */
    double estErrorPct = 0.0;
    /** Machine-readable report section (obs/report.hh). */
    obs::SamplingReport report;
};

/**
 * Fold per-representative measurements (plan order) back into a
 * whole-population estimate.  Each cluster's cycles are scaled by
 * clusterInsts / measured instructions, so the CPI stack leaves
 * extrapolated with the same factors still sum to estimated cycles.
 */
SampledEstimate extrapolate(const SamplingPlan &plan,
                            const std::vector<RepMeasurement> &reps);

/**
 * Merge per-representative registry snapshots into the sampled run's
 * snapshot: extrapolated ooo.cycles / ooo.ipc / ooo.cpi_stack.*
 * plus the sampling.* summary keys.  Raw per-representative counters
 * are deliberately not summed — a sampled run reports the estimate,
 * not a misleading partial census.
 */
obs::StatsRegistry::Snapshot
mergeSnapshots(const SamplingPlan &plan, const SampledEstimate &est,
               const std::vector<RepMeasurement> &meas,
               const std::vector<obs::StatsRegistry::Snapshot> &reps);

} // namespace arl::sampling

#endif // ARL_SAMPLING_SAMPLING_HH
