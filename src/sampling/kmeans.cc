#include "sampling/kmeans.hh"

#include <algorithm>
#include <cmath>

#include "common/random.hh"

namespace arl::sampling
{

namespace
{

using Vec = std::array<double, NumFeatures>;

double
dist2(const Vec &a, const Vec &b)
{
    double sum = 0.0;
    for (unsigned d = 0; d < NumFeatures; ++d) {
        double delta = a[d] - b[d];
        sum += delta * delta;
    }
    return sum;
}

} // namespace

KMeansResult
cluster(const std::vector<IntervalFeatures> &intervals,
        const KMeansConfig &config)
{
    KMeansResult result;
    const std::size_t n = intervals.size();
    if (n == 0)
        return result;

    // Features are already rates in [0, 1], but rescale per
    // dimension anyway so no single feature can dominate the
    // distance should that invariant ever loosen.
    Vec scale;
    scale.fill(0.0);
    for (const IntervalFeatures &iv : intervals)
        for (unsigned d = 0; d < NumFeatures; ++d)
            scale[d] = std::max(scale[d], std::abs(iv.f[d]));
    std::vector<Vec> pts(n);
    for (std::size_t i = 0; i < n; ++i)
        for (unsigned d = 0; d < NumFeatures; ++d)
            pts[i][d] = scale[d] > 0.0 ? intervals[i].f[d] / scale[d]
                                       : 0.0;

    // --- k-means++ seeding.  The D^2 draw naturally stops early
    // when every point coincides with an existing centroid, which is
    // exactly the "fewer distinct points than k" clamp.
    const std::size_t k_req =
        std::max<std::size_t>(1, std::min<std::size_t>(config.k, n));
    Rng rng(config.seed);
    std::vector<Vec> centroids;
    centroids.reserve(k_req);
    centroids.push_back(pts[rng.nextBounded(n)]);
    std::vector<double> best_d2(n);
    for (std::size_t i = 0; i < n; ++i)
        best_d2[i] = dist2(pts[i], centroids[0]);
    while (centroids.size() < k_req) {
        double total = 0.0;
        for (double d : best_d2)
            total += d;
        if (total <= 0.0)
            break;
        double target = rng.nextDouble() * total;
        std::size_t chosen = n - 1;
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            acc += best_d2[i];
            if (acc > target) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(pts[chosen]);
        for (std::size_t i = 0; i < n; ++i)
            best_d2[i] = std::min(best_d2[i],
                                  dist2(pts[i], centroids.back()));
    }
    const std::size_t k = centroids.size();

    // --- Lloyd iterations until the assignment is a fixed point.
    std::vector<std::uint32_t> assign(n, 0);
    for (unsigned iter = 0; iter < config.maxIterations; ++iter) {
        result.iterations = iter + 1;
        bool changed = iter == 0;
        for (std::size_t i = 0; i < n; ++i) {
            std::uint32_t best = 0;
            double best_dist = dist2(pts[i], centroids[0]);
            for (std::size_t c = 1; c < k; ++c) {
                double d = dist2(pts[i], centroids[c]);
                if (d < best_dist) {
                    best_dist = d;
                    best = static_cast<std::uint32_t>(c);
                }
            }
            if (assign[i] != best) {
                assign[i] = best;
                changed = true;
            }
        }
        // Empty-cluster repair (deterministic): give cluster c the
        // point currently farthest from its own centroid, lowest
        // index on ties, so every cluster always has a member.
        std::vector<std::uint64_t> sizes(k, 0);
        for (std::uint32_t a : assign)
            ++sizes[a];
        for (std::size_t c = 0; c < k; ++c) {
            if (sizes[c] != 0)
                continue;
            std::size_t worst = 0;
            double worst_dist = -1.0;
            for (std::size_t i = 0; i < n; ++i) {
                if (sizes[assign[i]] <= 1)
                    continue;
                double d = dist2(pts[i], centroids[assign[i]]);
                if (d > worst_dist) {
                    worst_dist = d;
                    worst = i;
                }
            }
            if (worst_dist < 0.0)
                break;
            --sizes[assign[worst]];
            assign[worst] = static_cast<std::uint32_t>(c);
            ++sizes[c];
            changed = true;
        }
        for (std::size_t c = 0; c < k; ++c) {
            Vec mean;
            mean.fill(0.0);
            for (std::size_t i = 0; i < n; ++i)
                if (assign[i] == c)
                    for (unsigned d = 0; d < NumFeatures; ++d)
                        mean[d] += pts[i][d];
            for (unsigned d = 0; d < NumFeatures; ++d)
                mean[d] /= static_cast<double>(sizes[c]);
            centroids[c] = mean;
        }
        if (!changed)
            break;
    }

    result.k = static_cast<unsigned>(k);
    result.assignment = std::move(assign);
    result.centroids = centroids;
    result.sizes.assign(k, 0);
    result.representatives.assign(k, 0);
    result.dispersion.assign(k, 0.0);
    std::vector<double> best_rep(k, -1.0);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t c = result.assignment[i];
        double d = std::sqrt(dist2(pts[i], centroids[c]));
        ++result.sizes[c];
        result.dispersion[c] += d;
        if (best_rep[c] < 0.0 || d < best_rep[c]) {
            best_rep[c] = d;
            result.representatives[c] = i;
        }
    }
    for (std::size_t c = 0; c < k; ++c)
        result.dispersion[c] /= static_cast<double>(result.sizes[c]);
    return result;
}

} // namespace arl::sampling
