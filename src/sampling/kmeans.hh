/**
 * @file
 * Deterministic seeded k-means over interval feature vectors.
 *
 * SimPoint-style phase classification: Lloyd iterations with
 * k-means++ seeding drawn from the repository's own xorshift64*
 * generator (common/random.hh), so the clustering — and therefore
 * every sampled report downstream — is bit-identical across runs,
 * hosts, and `--jobs` values.  All tie-breaks are by lowest index,
 * never by pointer or iteration order of an unordered container.
 *
 * Degenerate inputs are first-class: k is clamped to the number of
 * *distinct* points (all-identical vectors collapse to one cluster),
 * a single interval yields a single cluster, and an empty input
 * yields an empty result (callers reject it with a user error before
 * ever getting here — see sampling::buildPlan).
 */

#ifndef ARL_SAMPLING_KMEANS_HH
#define ARL_SAMPLING_KMEANS_HH

#include <cstdint>
#include <vector>

#include "sampling/features.hh"

namespace arl::sampling
{

/** Clustering knobs. */
struct KMeansConfig
{
    /** Requested cluster count (clamped to distinct points). */
    unsigned k = 6;
    /** Seed for the k-means++ draw; fixed default for repro. */
    std::uint64_t seed = 0xA8C7;
    /** Lloyd iteration cap (convergence usually comes first). */
    unsigned maxIterations = 64;
};

/** Clustering of N intervals into k phases. */
struct KMeansResult
{
    /** Effective cluster count (<= config.k). */
    unsigned k = 0;
    /** Lloyd iterations actually run. */
    unsigned iterations = 0;
    /** Cluster id per interval, in interval order. */
    std::vector<std::uint32_t> assignment;
    /** Final centroids (normalised feature space). */
    std::vector<std::array<double, NumFeatures>> centroids;
    /** Interval count per cluster. */
    std::vector<std::uint64_t> sizes;
    /**
     * Representative interval per cluster: the member closest to the
     * centroid (ties -> lowest interval index).
     */
    std::vector<std::size_t> representatives;
    /**
     * Mean member distance to the centroid, per cluster, in the
     * normalised feature space — the homogeneity proxy behind the
     * sampled estimate's confidence interval.
     */
    std::vector<double> dispersion;
};

/**
 * Cluster @p intervals into (at most) @p config.k phases.
 * Deterministic in (intervals, config); empty input -> empty result.
 */
KMeansResult cluster(const std::vector<IntervalFeatures> &intervals,
                     const KMeansConfig &config);

} // namespace arl::sampling

#endif // ARL_SAMPLING_KMEANS_HH
