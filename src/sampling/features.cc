#include "sampling/features.hh"

#include "common/logging.hh"
#include "vm/layout.hh"

namespace arl::sampling
{

const char *
featureName(unsigned i)
{
    static const char *names[NumFeatures] = {
        "data_refs_per_inst", "heap_refs_per_inst",
        "stack_refs_per_inst", "loads_per_inst",
        "stores_per_inst",    "region_transitions_per_ref",
        "branches_per_inst",  "taken_per_branch",
    };
    return i < NumFeatures ? names[i] : "?";
}

std::vector<IntervalFeatures>
extractFeatures(const trace::InMemoryTrace &t, InstCount interval_insts,
                InstCount first, InstCount limit)
{
    if (interval_insts == 0)
        fatal("sampling: interval length must be non-zero");
    InstCount total = t.size();
    if (first > total)
        first = total;
    if (limit && first + limit < total)
        total = first + limit;

    std::vector<IntervalFeatures> intervals;
    intervals.reserve(
        static_cast<std::size_t>((total - first) / interval_insts) + 1);

    for (InstCount start = first; start < total;
         start += interval_insts) {
        InstCount length = std::min<InstCount>(interval_insts,
                                               total - start);
        std::uint64_t region_refs[vm::NumDataRegions] = {0, 0, 0};
        std::uint64_t loads = 0, stores = 0, transitions = 0;
        std::uint64_t branches = 0, taken = 0, mem_refs = 0;
        // The first data reference of an interval has no predecessor
        // to transition from; phases are fingerprinted independently.
        unsigned prev_region = vm::NumDataRegions;
        for (InstCount i = start; i < start + length; ++i) {
            trace::RecordClass cls =
                trace::classifyRecord(t.records[i]);
            if (cls.isLoad)
                ++loads;
            if (cls.isStore)
                ++stores;
            if (cls.isBranch) {
                ++branches;
                if (cls.taken)
                    ++taken;
            }
            if (cls.isMem && cls.region < vm::NumDataRegions) {
                ++mem_refs;
                ++region_refs[cls.region];
                if (prev_region < vm::NumDataRegions &&
                    cls.region != prev_region)
                    ++transitions;
                prev_region = cls.region;
            }
        }
        IntervalFeatures iv;
        iv.start = start;
        iv.length = length;
        double insts = static_cast<double>(length);
        for (unsigned r = 0; r < vm::NumDataRegions; ++r)
            iv.f[r] = region_refs[r] / insts;
        iv.f[3] = loads / insts;
        iv.f[4] = stores / insts;
        iv.f[5] = mem_refs ? static_cast<double>(transitions) / mem_refs
                           : 0.0;
        iv.f[6] = branches / insts;
        iv.f[7] = branches ? static_cast<double>(taken) / branches : 0.0;
        intervals.push_back(iv);
    }
    return intervals;
}

} // namespace arl::sampling
