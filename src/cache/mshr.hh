/**
 * @file
 * Miss Status Holding Registers: the bound on outstanding misses of
 * one lockup-free cache.
 *
 * Each entry tracks one in-flight line fill and the cycle its data
 * returns.  A second miss to a line already in flight merges into
 * the existing entry (miss-under-miss); a primary miss that finds
 * every register occupied stalls until the earliest fill returns
 * (structural hazard).
 *
 * The tag model (cache/cache.hh) allocates a line on the first miss,
 * so from the tag array's point of view a secondary miss looks like
 * a hit.  The hierarchy therefore consults inFlight() on *hits* to
 * detect merges, and only allocates MSHRs on tag misses.
 *
 * Zero entries disables the file: unlimited outstanding misses, the
 * repository's ideal default.
 */

#ifndef ARL_CACHE_MSHR_HH
#define ARL_CACHE_MSHR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "obs/histogram.hh"

namespace arl::cache
{

/** The MSHR file of one cache structure. */
class MshrFile
{
  public:
    /** @param entries register count (0 = disabled / unlimited). */
    explicit MshrFile(unsigned entries);

    bool enabled() const { return limit != 0; }

    /** Drop every entry whose fill has returned by @p now. */
    void retire(Cycle now);

    /**
     * Fill-return cycle of an outstanding miss to @p line, or 0 when
     * no such miss is in flight.  (@p line is a line address, i.e.
     * addr / lineBytes.)
     */
    Cycle inFlight(Addr line) const;

    /** All registers occupied? */
    bool full() const;

    /** Earliest fill-return cycle among occupied registers. */
    Cycle earliestReady() const;

    /** Occupy a register for a primary miss to @p line. */
    void allocate(Addr line, Cycle ready_at);

    std::size_t occupancy() const { return entries.size(); }

    /** Forget all in-flight state (between warmup and timed run). */
    void reset();

    // --- statistics ---
    std::uint64_t allocations = 0;   ///< primary misses registered
    std::uint64_t merges = 0;        ///< secondary misses merged
    std::uint64_t fullStalls = 0;    ///< misses that found it full
    std::uint64_t stallCycles = 0;   ///< cycles those misses waited
    std::uint64_t peakOccupancy = 0; ///< high-water register count
    /** Register count right after each allocation (occupancy the
     *  primary miss observed, itself included). */
    obs::Log2Histogram occupancyAtAllocate;

  private:
    struct Entry
    {
        Addr line;
        Cycle readyAt;
    };

    std::vector<Entry> entries;  ///< at most `limit`; linear scans
    unsigned limit;
};

} // namespace arl::cache

#endif // ARL_CACHE_MSHR_HH
