#include "cache/hierarchy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/stats_registry.hh"

namespace arl::cache
{

Hierarchy::Hierarchy(const HierarchyConfig &config_in)
    : config(config_in), l1Cache(config.l1), l2Cache(config.l2),
      l1BankSet(config.contention.l1Banks, config.l1.lineBytes),
      lvcBankSet(config.contention.lvcBanks, config.lvc.lineBytes),
      l1MshrFile(config.contention.mshrs),
      lvcMshrFile(config.contention.mshrs)
{
    if (config.hasLvc)
        lvc = std::make_unique<Cache>(config.lvc);
    fastUncontended = !config.contention.anyEnabled();
}

Cache &
Hierarchy::firstLevel(MemPipe pipe)
{
    if (pipe == MemPipe::Lvc) {
        ARL_ASSERT(lvc, "LVC pipeline access without an LVC");
        return *lvc;
    }
    return l1Cache;
}

HierarchyResult
Hierarchy::access(MemPipe pipe, Addr addr, bool is_write)
{
    HierarchyResult result;
    Cache &first = firstLevel(pipe);
    std::uint32_t first_latency = (pipe == MemPipe::Lvc)
                                      ? config.lvcHitLatency
                                      : config.l1HitLatency;
    AccessOutcome l1_outcome = first.access(addr, is_write);
    result.latency = first_latency;
    result.l1Hit = l1_outcome.hit;
    if (l1_outcome.hit)
        return result;

    AccessOutcome l2_outcome = l2Cache.access(addr, is_write);
    result.latency += config.l2HitLatency;
    if (l2_outcome.hit)
        return result;

    result.latency += config.memoryLatency;
    return result;
}

Cycle
Hierarchy::scheduleBusTransfer(Cycle ready)
{
    Cycle begin = std::max(ready, busFreeAt);
    busFreeAt = begin + config.contention.busCyclesPerTransfer;
    busBusyCycles += config.contention.busCyclesPerTransfer;
    return busFreeAt;
}

Cycle
Hierarchy::enqueueWriteback(Cycle at)
{
    // Entries whose drain completed have freed their slot.
    while (!wbDrainAt.empty() && wbDrainAt.front() <= at)
        wbDrainAt.pop_front();
    if (wbDrainAt.size() >= config.contention.wbBufEntries) {
        // Structural stall: the evicting miss waits for the oldest
        // buffered victim to finish draining.
        Cycle free_at = wbDrainAt.front();
        wbDrainAt.pop_front();
        ++wbFullStalls;
        wbStallCycles += free_at - at;
        at = free_at;
    }
    ++wbEnqueued;
    // The victim drains over the shared bus when its bandwidth is
    // bounded, else at the L2 access latency.
    Cycle drain = config.contention.busCyclesPerTransfer
                      ? scheduleBusTransfer(at)
                      : at + config.l2HitLatency;
    wbDrainAt.insert(
        std::upper_bound(wbDrainAt.begin(), wbDrainAt.end(), drain),
        drain);
    return at;
}

HierarchyResult
Hierarchy::timedAccessSlow(MemPipe pipe, Addr addr, bool is_write,
                           Cycle now)
{
    const ContentionConfig &contention = config.contention;
    Cache &first = firstLevel(pipe);
    const bool is_lvc = (pipe == MemPipe::Lvc);
    std::uint32_t first_latency =
        is_lvc ? config.lvcHitLatency : config.l1HitLatency;
    BankSet &banks = is_lvc ? lvcBankSet : l1BankSet;
    MshrFile &mshrs = is_lvc ? lvcMshrFile : l1MshrFile;

    // Bank arbitration: same-cycle accesses to the same bank
    // serialize; the loser starts late and its whole access shifts.
    Cycle start = banks.schedule(addr, now);
    if (accessObserver)
        accessObserver(pipe, addr, now, start, banks.bankOf(addr));

    const Addr line = addr / first.geometry().lineBytes;
    HierarchyResult result;
    result.bankDelay = static_cast<std::uint32_t>(start - now);
    AccessOutcome first_outcome = first.access(addr, is_write);
    result.l1Hit = first_outcome.hit;
    Cycle done = start + first_latency;

    if (first_outcome.hit) {
        // The tag array allocates on the primary miss, so a
        // secondary miss to an in-flight line probes as a hit; it
        // actually completes with the outstanding fill (merge).
        if (mshrs.enabled()) {
            Cycle fill_at = mshrs.inFlight(line);
            if (fill_at > done) {
                ++mshrs.merges;
                done = fill_at;
            }
        }
        result.latency = static_cast<std::uint32_t>(done - now);
        return result;
    }

    // A dirty victim must claim a writeback-buffer slot before the
    // fill may proceed.
    if (first_outcome.writeback && contention.wbBufEntries) {
        Cycle before = start;
        start = enqueueWriteback(start);
        result.wbDelay = static_cast<std::uint32_t>(start - before);
    }

    // A primary miss needs an MSHR; stall until one retires when the
    // file is full.
    if (mshrs.enabled()) {
        mshrs.retire(start);
        if (mshrs.full()) {
            Cycle free_at = mshrs.earliestReady();
            ++mshrs.fullStalls;
            mshrs.stallCycles += free_at - start;
            result.mshrDelay =
                static_cast<std::uint32_t>(free_at - start);
            start = free_at;
            mshrs.retire(start);
        }
    }

    AccessOutcome l2_outcome = l2Cache.access(addr, is_write);
    Cycle fill_ready = start + first_latency + config.l2HitLatency;
    if (!l2_outcome.hit)
        fill_ready += config.memoryLatency;
    // The refill crosses the shared L2/memory bus.
    done = contention.busCyclesPerTransfer
               ? scheduleBusTransfer(fill_ready)
               : fill_ready;
    result.busDelay = static_cast<std::uint32_t>(done - fill_ready);
    if (mshrs.enabled())
        mshrs.allocate(line, done);
    result.latency = static_cast<std::uint32_t>(done - now);
    return result;
}

void
Hierarchy::resetContention()
{
    l1BankSet.reset();
    lvcBankSet.reset();
    l1MshrFile.reset();
    lvcMshrFile.reset();
    wbDrainAt.clear();
    busFreeAt = 0;

    l1BankSet.conflicts = l1BankSet.conflictCycles = 0;
    lvcBankSet.conflicts = lvcBankSet.conflictCycles = 0;
    l1BankSet.conflictBursts.reset();
    lvcBankSet.conflictBursts.reset();
    for (MshrFile *file : {&l1MshrFile, &lvcMshrFile}) {
        file->allocations = file->merges = 0;
        file->fullStalls = file->stallCycles = 0;
        file->peakOccupancy = 0;
        file->occupancyAtAllocate.reset();
    }
    busBusyCycles = 0;
    wbEnqueued = wbFullStalls = wbStallCycles = 0;
}

void
Hierarchy::registerStats(obs::StatsRegistry &registry,
                         const std::string &prefix) const
{
    l1Cache.registerStats(registry, prefix + ".l1");
    if (lvc)
        lvc->registerStats(registry, prefix + ".lvc");
    l2Cache.registerStats(registry, prefix + ".l2");

    // Contention counters exist only when contention is configured:
    // ideal-configuration reports must keep their historical key set
    // byte-identical (tests/golden/).
    if (!config.contention.anyEnabled())
        return;
    auto bank_stats = [&](const BankSet &banks, const std::string &p) {
        registry.addCounter(p + ".bank_conflicts", &banks.conflicts,
                            "accesses delayed by a busy bank");
        registry.addCounter(p + ".bank_conflict_cycles",
                            &banks.conflictCycles,
                            "cycles lost to bank conflicts");
        registry.addLog2Histogram(p + ".bank_bursts",
                                  &banks.conflictBursts,
                                  "consecutive-conflict run lengths");
    };
    auto mshr_stats = [&](const MshrFile &file, const std::string &p) {
        registry.addCounter(p + ".mshr.allocations", &file.allocations,
                            "primary misses that took an MSHR");
        registry.addCounter(p + ".mshr.merges", &file.merges,
                            "secondary misses merged into an MSHR");
        registry.addCounter(p + ".mshr.full_stalls", &file.fullStalls,
                            "misses that found every MSHR busy");
        registry.addCounter(p + ".mshr.stall_cycles",
                            &file.stallCycles,
                            "cycles misses waited for a free MSHR");
        registry.addCounter(p + ".mshr.peak_occupancy",
                            &file.peakOccupancy,
                            "high-water outstanding-miss count");
        registry.addLog2Histogram(p + ".mshr.occupancy",
                                  &file.occupancyAtAllocate,
                                  "registers held at each allocation");
    };
    bank_stats(l1BankSet, prefix + ".l1");
    mshr_stats(l1MshrFile, prefix + ".l1");
    if (lvc) {
        bank_stats(lvcBankSet, prefix + ".lvc");
        mshr_stats(lvcMshrFile, prefix + ".lvc");
    }
    registry.addCounter(prefix + ".wb.enqueued", &wbEnqueued,
                        "dirty victims buffered for writeback");
    registry.addCounter(prefix + ".wb.full_stalls", &wbFullStalls,
                        "misses stalled on a full writeback buffer");
    registry.addCounter(prefix + ".wb.stall_cycles", &wbStallCycles,
                        "cycles lost to writeback-buffer stalls");
    registry.addCounter(prefix + ".bus.busy_cycles", &busBusyCycles,
                        "shared L2/memory bus occupancy");
}

} // namespace arl::cache
