#include "cache/hierarchy.hh"

#include "common/logging.hh"
#include "obs/stats_registry.hh"

namespace arl::cache
{

Hierarchy::Hierarchy(const HierarchyConfig &config_in)
    : config(config_in), l1Cache(config.l1), l2Cache(config.l2)
{
    if (config.hasLvc)
        lvc = std::make_unique<Cache>(config.lvc);
}

Cache &
Hierarchy::firstLevel(MemPipe pipe)
{
    if (pipe == MemPipe::Lvc) {
        ARL_ASSERT(lvc, "LVC pipeline access without an LVC");
        return *lvc;
    }
    return l1Cache;
}

HierarchyResult
Hierarchy::access(MemPipe pipe, Addr addr, bool is_write)
{
    HierarchyResult result;
    Cache &first = firstLevel(pipe);
    std::uint32_t first_latency = (pipe == MemPipe::Lvc)
                                      ? config.lvcHitLatency
                                      : config.l1HitLatency;
    AccessOutcome l1_outcome = first.access(addr, is_write);
    result.latency = first_latency;
    result.l1Hit = l1_outcome.hit;
    if (l1_outcome.hit)
        return result;

    AccessOutcome l2_outcome = l2Cache.access(addr, is_write);
    result.latency += config.l2HitLatency;
    if (l2_outcome.hit)
        return result;

    result.latency += config.memoryLatency;
    return result;
}

void
Hierarchy::registerStats(obs::StatsRegistry &registry,
                         const std::string &prefix) const
{
    l1Cache.registerStats(registry, prefix + ".l1");
    if (lvc)
        lvc->registerStats(registry, prefix + ".lvc");
    l2Cache.registerStats(registry, prefix + ".l2");
}

} // namespace arl::cache
