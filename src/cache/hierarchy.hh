/**
 * @file
 * Two-level data-memory hierarchy with an optional Local Variable
 * Cache (Table 4 of the paper).
 *
 *   L1 D-cache: 64 KB, 2-way, 2-cycle hit (configurable)
 *   LVC:         4 KB, direct-mapped, 1-cycle hit (decoupled mode)
 *   L2:        512 KB, 4-way, 12-cycle
 *   Memory:    50-cycle
 *
 * Both L1s and the LVC miss into the shared L2.  Caches are
 * lockup-free: a miss occupies its port only on the initiating
 * cycle; the returned latency tells the core when the data arrives.
 *
 * Two access paths exist:
 *
 *  - access(): the ideal path — pure latency adder, fully
 *    interleaved, unbounded misses, free writebacks.  Used for
 *    functional warmup and wherever time is not being modelled.
 *  - timedAccess(): the contention-aware path.  When any
 *    ContentionConfig knob is non-zero it additionally models
 *    address-interleaved banks (same-cycle same-bank accesses
 *    serialize), a bounded MSHR file per first-level structure
 *    (secondary misses merge, primary misses stall when full), a
 *    finite writeback buffer for dirty victims, and a shared
 *    L2/memory bus with bounded bandwidth for refills and
 *    writeback drains.  With every knob at its zero default,
 *    timedAccess() is cycle-for-cycle identical to access().
 */

#ifndef ARL_CACHE_HIERARCHY_HH
#define ARL_CACHE_HIERARCHY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "cache/bank.hh"
#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/types.hh"

namespace arl::obs
{
class StatsRegistry;
}

namespace arl::cache
{

/** Which first-level structure an access is routed to. */
enum class MemPipe : std::uint8_t
{
    DCache = 0,  ///< the regular data-cache pipeline (LSQ side)
    Lvc = 1      ///< the local-variable-cache pipeline (LVAQ side)
};

/**
 * Contention knobs.  Every field's zero default selects the ideal
 * behaviour the repository has always modelled, which keeps the
 * committed golden reports byte-identical; see DESIGN.md.
 */
struct ContentionConfig
{
    unsigned l1Banks = 0;       ///< L1 D-cache banks (0 = interleaved)
    unsigned lvcBanks = 0;      ///< LVC banks (0 = interleaved)
    unsigned mshrs = 0;         ///< MSHRs per structure (0 = unlimited)
    unsigned wbBufEntries = 0;  ///< writeback buffer depth (0 = infinite)
    /** Shared L2/memory bus cycles per line transfer (0 = infinite
     *  bandwidth).  Charged on refills and on writeback drains. */
    unsigned busCyclesPerTransfer = 0;

    bool anyEnabled() const
    {
        return l1Banks || lvcBanks || mshrs || wbBufEntries ||
               busCyclesPerTransfer;
    }
};

/** Hierarchy latencies and geometry. */
struct HierarchyConfig
{
    CacheGeometry l1{"L1D", 64 * 1024, 32, 2};
    std::uint32_t l1HitLatency = 2;

    bool hasLvc = false;
    CacheGeometry lvc{"LVC", 4 * 1024, 32, 1};
    std::uint32_t lvcHitLatency = 1;

    CacheGeometry l2{"L2", 512 * 1024, 64, 4};
    std::uint32_t l2HitLatency = 12;

    std::uint32_t memoryLatency = 50;

    ContentionConfig contention{};
};

/**
 * Timing outcome of one access.
 *
 * The delay fields break the contention share of `latency` down by
 * cause, in the order the stalls occur on the timed path; each is 0
 * on the ideal path.  The remainder of `latency` is pure hierarchy
 * latency (hit / L2 / memory cycles).
 */
struct HierarchyResult
{
    std::uint32_t latency = 0;  ///< cycles until data available
    bool l1Hit = false;         ///< hit in the first-level structure
    std::uint32_t bankDelay = 0;  ///< cycles lost to bank arbitration
    std::uint32_t wbDelay = 0;    ///< cycles on a full writeback buffer
    std::uint32_t mshrDelay = 0;  ///< cycles waiting for a free MSHR
    std::uint32_t busDelay = 0;   ///< cycles the refill queued for the bus
};

/** The full data-side hierarchy. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config);

    /**
     * Perform one access through @p pipe on the ideal path.
     * @return total latency (first-level hit latency on a hit; plus
     *         L2 / memory latency on misses).
     */
    HierarchyResult access(MemPipe pipe, Addr addr, bool is_write);

    /**
     * Perform one access through @p pipe at cycle @p now on the
     * contention-aware path.  Identical to access() while every
     * ContentionConfig knob is zero.  Within a cycle, callers must
     * present accesses in the deterministic stage/program order the
     * core already uses — bank and bus grants are first-come.
     *
     * The all-knobs-zero case short-circuits straight to access():
     * one cached-bool test instead of bank scheduling, MSHR lookup,
     * and writeback bookkeeping that all provably no-op (the
     * fast-path differential test pins the equivalence).  Installing
     * an AccessObserver forces the full path so instrumentation sees
     * every access.
     */
    HierarchyResult timedAccess(MemPipe pipe, Addr addr, bool is_write,
                                Cycle now)
    {
        if (fastUncontended) [[likely]]
            return access(pipe, addr, is_write);
        return timedAccessSlow(pipe, addr, is_write, now);
    }

    /**
     * Forget all transient contention state (bank busy time, MSHR
     * occupancy, writeback buffer, bus schedule) *and* the contention
     * statistics.  Called between functional warmup and the timed
     * window so warmup never pollutes timed contention.
     */
    void resetContention();

    /** First-level cache behind @p pipe. */
    Cache &firstLevel(MemPipe pipe);

    Cache &l1() { return l1Cache; }
    Cache &lvcCache() { return *lvc; }
    Cache &l2() { return l2Cache; }
    bool hasLvc() const { return lvc != nullptr; }

    const HierarchyConfig &configuration() const { return config; }

    // --- contention introspection (tests, reports) ---
    const BankSet &l1Banks() const { return l1BankSet; }
    const BankSet &lvcBanks() const { return lvcBankSet; }
    const MshrFile &l1Mshrs() const { return l1MshrFile; }
    const MshrFile &lvcMshrs() const { return lvcMshrFile; }
    std::uint64_t busBusy() const { return busBusyCycles; }
    std::uint64_t wbFullStallCount() const { return wbFullStalls; }
    std::uint64_t wbStallCycleCount() const { return wbStallCycles; }
    std::uint64_t wbEnqueuedCount() const { return wbEnqueued; }

    /**
     * Test/instrumentation hook: called on every timedAccess with
     * (pipe, addr, request cycle, granted start cycle, bank index).
     * Used by the port+bank invariant test; empty by default.
     */
    using AccessObserver = std::function<void(
        MemPipe, Addr, Cycle request_at, Cycle start_at, unsigned bank)>;
    void setAccessObserver(AccessObserver observer)
    {
        accessObserver = std::move(observer);
        fastUncontended =
            !config.contention.anyEnabled() && !accessObserver;
    }

    /**
     * Register every level's stats under "<prefix>.l1", "<prefix>.lvc"
     * (when present) and "<prefix>.l2".  Contention counters (bank
     * conflicts, MSHR merges/stalls, writeback-buffer stalls, bus busy
     * cycles) are registered only when contention is configured, so
     * ideal-configuration reports keep their exact historical key set.
     */
    void registerStats(obs::StatsRegistry &registry,
                       const std::string &prefix) const;

  private:
    /** The contention-modelling body of timedAccess(). */
    HierarchyResult timedAccessSlow(MemPipe pipe, Addr addr,
                                    bool is_write, Cycle now);

    /** Bus transfer completion no earlier than @p ready; books the
     *  bus busy time.  Only called when the bus knob is non-zero. */
    Cycle scheduleBusTransfer(Cycle ready);

    /** Admit a dirty victim to the writeback buffer at @p at;
     *  returns the (possibly stalled) cycle the miss may proceed. */
    Cycle enqueueWriteback(Cycle at);

    HierarchyConfig config;
    Cache l1Cache;
    std::unique_ptr<Cache> lvc;
    Cache l2Cache;

    // Contention state (inert while ContentionConfig is all-zero).
    BankSet l1BankSet;
    BankSet lvcBankSet;
    MshrFile l1MshrFile;
    MshrFile lvcMshrFile;
    std::deque<Cycle> wbDrainAt;  ///< drain-completion cycles, sorted
    Cycle busFreeAt = 0;
    AccessObserver accessObserver;
    /** No contention knobs and no observer: timedAccess ≡ access. */
    bool fastUncontended = false;

    // Contention statistics.
    std::uint64_t busBusyCycles = 0;
    std::uint64_t wbEnqueued = 0;
    std::uint64_t wbFullStalls = 0;
    std::uint64_t wbStallCycles = 0;
};

} // namespace arl::cache

#endif // ARL_CACHE_HIERARCHY_HH
