/**
 * @file
 * Two-level data-memory hierarchy with an optional Local Variable
 * Cache (Table 4 of the paper).
 *
 *   L1 D-cache: 64 KB, 2-way, 2-cycle hit (configurable)
 *   LVC:         4 KB, direct-mapped, 1-cycle hit (decoupled mode)
 *   L2:        512 KB, 4-way, 12-cycle
 *   Memory:    50-cycle, fully interleaved (no bank conflicts)
 *
 * Both L1s and the LVC miss into the shared L2.  Caches are
 * lockup-free: a miss occupies its port only on the initiating
 * cycle; the returned latency tells the core when the data arrives.
 */

#ifndef ARL_CACHE_HIERARCHY_HH
#define ARL_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>

#include "cache/cache.hh"
#include "common/types.hh"

namespace arl::obs
{
class StatsRegistry;
}

namespace arl::cache
{

/** Which first-level structure an access is routed to. */
enum class MemPipe : std::uint8_t
{
    DCache = 0,  ///< the regular data-cache pipeline (LSQ side)
    Lvc = 1      ///< the local-variable-cache pipeline (LVAQ side)
};

/** Hierarchy latencies and geometry. */
struct HierarchyConfig
{
    CacheGeometry l1{"L1D", 64 * 1024, 32, 2};
    std::uint32_t l1HitLatency = 2;

    bool hasLvc = false;
    CacheGeometry lvc{"LVC", 4 * 1024, 32, 1};
    std::uint32_t lvcHitLatency = 1;

    CacheGeometry l2{"L2", 512 * 1024, 64, 4};
    std::uint32_t l2HitLatency = 12;

    std::uint32_t memoryLatency = 50;
};

/** Timing outcome of one access. */
struct HierarchyResult
{
    std::uint32_t latency = 0;  ///< cycles until data available
    bool l1Hit = false;         ///< hit in the first-level structure
};

/** The full data-side hierarchy. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config);

    /**
     * Perform one access through @p pipe.
     * @return total latency (first-level hit latency on a hit; plus
     *         L2 / memory latency on misses).
     */
    HierarchyResult access(MemPipe pipe, Addr addr, bool is_write);

    /** First-level cache behind @p pipe. */
    Cache &firstLevel(MemPipe pipe);

    Cache &l1() { return l1Cache; }
    Cache &lvcCache() { return *lvc; }
    Cache &l2() { return l2Cache; }
    bool hasLvc() const { return lvc != nullptr; }

    const HierarchyConfig &configuration() const { return config; }

    /**
     * Register every level's stats under "<prefix>.l1", "<prefix>.lvc"
     * (when present) and "<prefix>.l2".
     */
    void registerStats(obs::StatsRegistry &registry,
                       const std::string &prefix) const;

  private:
    HierarchyConfig config;
    Cache l1Cache;
    std::unique_ptr<Cache> lvc;
    Cache l2Cache;
};

} // namespace arl::cache

#endif // ARL_CACHE_HIERARCHY_HH
