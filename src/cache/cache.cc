#include "cache/cache.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "obs/stats_registry.hh"

namespace arl::cache
{

Cache::Cache(const CacheGeometry &geometry) : geom(geometry)
{
    ARL_ASSERT(isPowerOf2(geom.lineBytes) && isPowerOf2(geom.assoc),
               "cache %s: line size and associativity must be powers "
               "of two", geom.name.c_str());
    ARL_ASSERT(geom.sizeBytes % (geom.lineBytes * geom.assoc) == 0,
               "cache %s: size not divisible by way size",
               geom.name.c_str());
    lines.resize(static_cast<std::size_t>(geom.numSets()) * geom.assoc);
}

AccessOutcome
Cache::access(Addr addr, bool is_write)
{
    AccessOutcome outcome;
    Addr tag = lineAddr(addr);
    std::size_t base =
        static_cast<std::size_t>(setIndex(addr)) * geom.assoc;
    ++stamp;

    // Hit path.
    for (std::uint32_t way = 0; way < geom.assoc; ++way) {
        Line &line = lines[base + way];
        if (line.valid && line.tag == tag) {
            line.lruStamp = stamp;
            line.dirty |= is_write;
            ++hits;
            outcome.hit = true;
            return outcome;
        }
    }

    // Miss: choose the LRU (or first invalid) victim.
    ++misses;
    Line *victim = &lines[base];
    for (std::uint32_t way = 0; way < geom.assoc; ++way) {
        Line &line = lines[base + way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        ++writebacks;
        outcome.writeback = true;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lruStamp = stamp;
    return outcome;
}

bool
Cache::probe(Addr addr) const
{
    Addr tag = lineAddr(addr);
    std::size_t base =
        static_cast<std::size_t>(setIndex(addr)) * geom.assoc;
    for (std::uint32_t way = 0; way < geom.assoc; ++way) {
        const Line &line = lines[base + way];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line &line : lines)
        line = Line{};
    stamp = 0;
}

double
Cache::hitRatePct()const
{
    std::uint64_t total = hits + misses;
    return total ? 100.0 * static_cast<double>(hits) /
                       static_cast<double>(total)
                 : 100.0;
}

void
Cache::registerStats(obs::StatsRegistry &registry,
                     const std::string &prefix) const
{
    registry.addCounter(prefix + ".hits", &hits,
                        geom.name + " tag hits");
    registry.addCounter(prefix + ".misses", &misses,
                        geom.name + " tag misses");
    registry.addCounter(prefix + ".writebacks", &writebacks,
                        geom.name + " dirty evictions");
    registry.addFormula(prefix + ".hit_rate_pct",
                        [this] { return hitRatePct(); },
                        geom.name + " hit rate (100 when idle)");
}

} // namespace arl::cache
