#include "cache/bank.hh"

namespace arl::cache
{

BankSet::BankSet(unsigned banks, std::uint32_t line_bytes)
    : nextFree(banks, Cycle{0}), lineBytes(line_bytes ? line_bytes : 1)
{
}

unsigned
BankSet::bankOf(Addr addr) const
{
    if (nextFree.empty())
        return 0;
    return static_cast<unsigned>((addr / lineBytes) % nextFree.size());
}

Cycle
BankSet::schedule(Addr addr, Cycle at)
{
    if (nextFree.empty())
        return at;
    Cycle &free_at = nextFree[bankOf(addr)];
    Cycle start = at;
    if (free_at > start) {
        ++conflicts;
        conflictCycles += free_at - start;
        start = free_at;
        ++currentBurst;
    } else if (currentBurst) {
        conflictBursts.add(currentBurst);
        currentBurst = 0;
    }
    free_at = start + 1;
    return start;
}

void
BankSet::reset()
{
    for (Cycle &free_at : nextFree)
        free_at = 0;
    currentBurst = 0;
}

} // namespace arl::cache
