/**
 * @file
 * Address-interleaved cache bank scheduler.
 *
 * A BankSet models the per-bank structural hazard of a multi-ported
 * cache built from single-ported banks: consecutive cache lines map
 * to consecutive banks, each bank accepts one access per cycle, and
 * two same-cycle accesses to the same bank serialize.  The scheduler
 * only tracks *time* — tag state lives in Cache, and the hierarchy
 * decides what an access means once it has been granted a bank slot.
 *
 * With zero banks the set is disabled and schedule() is the identity
 * on time, which is the ideal fully-interleaved behaviour the rest of
 * the repository defaults to.
 */

#ifndef ARL_CACHE_BANK_HH
#define ARL_CACHE_BANK_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "obs/histogram.hh"

namespace arl::cache
{

/** Per-bank next-free-cycle scheduler for one cache structure. */
class BankSet
{
  public:
    /**
     * @param banks number of single-ported banks (0 = disabled:
     *        fully interleaved, never a conflict).
     * @param line_bytes the owning cache's line size; banks are
     *        interleaved on line address.
     */
    BankSet(unsigned banks, std::uint32_t line_bytes);

    bool enabled() const { return !nextFree.empty(); }
    unsigned numBanks() const
    {
        return static_cast<unsigned>(nextFree.size());
    }

    /** Bank index serving @p addr (0 when disabled). */
    unsigned bankOf(Addr addr) const;

    /**
     * Claim the bank serving @p addr for one cycle, no earlier than
     * @p at.  Returns the cycle the access actually starts; any
     * delay versus @p at is a bank conflict and is counted.
     */
    Cycle schedule(Addr addr, Cycle at);

    /** Forget all busy time (e.g. between warmup and timed run). */
    void reset();

    // --- statistics ---
    std::uint64_t conflicts = 0;       ///< accesses delayed by a busy bank
    std::uint64_t conflictCycles = 0;  ///< cycles lost to those delays
    /** Lengths of runs of consecutive delayed accesses.  A run still
     *  open at the end of a run is not recorded (it has no length
     *  yet); the loss is at most one sample and is deterministic. */
    obs::Log2Histogram conflictBursts;

  private:
    std::vector<Cycle> nextFree;  ///< per bank: first claimable cycle
    std::uint32_t lineBytes;
    std::uint64_t currentBurst = 0;  ///< delayed accesses in the open run
};

} // namespace arl::cache

#endif // ARL_CACHE_BANK_HH
