#include "cache/tlb.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "obs/stats_registry.hh"

namespace arl::cache
{

Tlb::Tlb(std::uint32_t entry_count, const vm::RegionMap &regions_in)
    : entries(entry_count), regions(regions_in)
{
    ARL_ASSERT(isPowerOf2(entry_count), "TLB entries must be 2^n");
}

TlbResult
Tlb::translate(Addr addr)
{
    Addr vpn = addr >> vm::layout::PageShift;
    Entry &entry = entries[vpn & (entries.size() - 1)];
    TlbResult result;
    if (entry.valid && entry.vpn == vpn) {
        ++hits;
        result.hit = true;
        result.stackPage = entry.stackBit;
        return result;
    }
    ++misses;
    entry.valid = true;
    entry.vpn = vpn;
    entry.stackBit = regions.isStack(addr);
    result.hit = false;
    result.stackPage = entry.stackBit;
    return result;
}

void
Tlb::registerStats(obs::StatsRegistry &registry,
                   const std::string &prefix) const
{
    registry.addCounter(prefix + ".hits", &hits, "TLB hits");
    registry.addCounter(prefix + ".misses", &misses, "TLB misses");
    registry.addFormula(
        prefix + ".miss_rate_pct",
        [this] {
            std::uint64_t total = hits + misses;
            return total ? 100.0 * static_cast<double>(misses) /
                               static_cast<double>(total)
                         : 0.0;
        },
        "TLB miss rate (0 when idle)");
}

} // namespace arl::cache
