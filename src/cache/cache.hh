/**
 * @file
 * Set-associative cache tag model with LRU replacement.
 *
 * The timing simulator only needs hit/miss decisions and statistics;
 * data never moves (the functional simulator owns the architectural
 * memory).  Caches are write-back / write-allocate, as in
 * SimpleScalar's default configuration used by the paper.  Port
 * arbitration and miss latencies live in the hierarchy / core, not
 * here.
 */

#ifndef ARL_CACHE_CACHE_HH
#define ARL_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace arl::obs
{
class StatsRegistry;
}

namespace arl::cache
{

/** Geometry and identity of one cache. */
struct CacheGeometry
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 2;

    std::uint32_t numSets() const
    {
        return sizeBytes / (lineBytes * assoc);
    }
};

/** Result of one tag probe. */
struct AccessOutcome
{
    bool hit = false;
    bool writeback = false;   ///< a dirty victim was evicted
};

/** LRU set-associative tag array. */
class Cache
{
  public:
    explicit Cache(const CacheGeometry &geometry);

    /**
     * Probe and update tags for an access to @p addr.
     * Allocates on miss (write-allocate).
     */
    AccessOutcome access(Addr addr, bool is_write);

    /** Probe only — no allocation, no LRU update. */
    bool probe(Addr addr) const;

    /** Invalidate everything (e.g. between benchmark runs). */
    void flush();

    const CacheGeometry &geometry() const { return geom; }

    // --- statistics ---
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    /** Hit rate in percent (100 when never accessed). */
    double hitRatePct() const;

    /**
     * Register hits/misses/writebacks and the hit-rate formula under
     * "<prefix>.".  The cache must outlive @p registry's consumers.
     */
    void registerStats(obs::StatsRegistry &registry,
                       const std::string &prefix) const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    Addr lineAddr(Addr addr) const { return addr / geom.lineBytes; }
    std::uint32_t setIndex(Addr addr) const
    {
        return lineAddr(addr) % geom.numSets();
    }

    CacheGeometry geom;
    std::vector<Line> lines;   ///< numSets * assoc, set-major
    std::uint64_t stamp = 0;
};

} // namespace arl::cache

#endif // ARL_CACHE_CACHE_HH
