/**
 * @file
 * TLB model with the paper's per-page stack bit (§4.2).
 *
 * Each entry is extended with one bit recording whether the
 * translated page belongs to the stack region; the bit is filled
 * from the run-time system's region map when the translation is
 * installed (the paper: "storing such information can be done
 * accurately and efficiently when a page is allocated by the
 * run-time system").  The data-decoupled pipeline verifies its
 * region prediction against this bit during address translation.
 */

#ifndef ARL_CACHE_TLB_HH
#define ARL_CACHE_TLB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "vm/layout.hh"

namespace arl::obs
{
class StatsRegistry;
}

namespace arl::cache
{

/** Result of a translation. */
struct TlbResult
{
    bool hit = false;       ///< entry was resident
    bool stackPage = false; ///< the page's stack bit
};

/** Direct-mapped TLB with per-page stack bits. */
class Tlb
{
  public:
    /**
     * @param entries power-of-two entry count.
     * @param regions region map used to fill stack bits on refill.
     */
    Tlb(std::uint32_t entries, const vm::RegionMap &regions);

    /** Translate (and refill on miss). */
    TlbResult translate(Addr addr);

    // --- statistics ---
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    /** Register hits/misses/miss-rate under "<prefix>.". */
    void registerStats(obs::StatsRegistry &registry,
                       const std::string &prefix) const;

  private:
    struct Entry
    {
        Addr vpn = 0;
        bool valid = false;
        bool stackBit = false;
    };

    std::vector<Entry> entries;
    const vm::RegionMap &regions;
};

} // namespace arl::cache

#endif // ARL_CACHE_TLB_HH
