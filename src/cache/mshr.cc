#include "cache/mshr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace arl::cache
{

MshrFile::MshrFile(unsigned entries_in) : limit(entries_in)
{
    if (limit)
        entries.reserve(limit);
}

void
MshrFile::retire(Cycle now)
{
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [now](const Entry &e) {
                                     return e.readyAt <= now;
                                 }),
                  entries.end());
}

Cycle
MshrFile::inFlight(Addr line) const
{
    for (const Entry &e : entries)
        if (e.line == line)
            return e.readyAt;
    return 0;
}

bool
MshrFile::full() const
{
    return limit && entries.size() >= limit;
}

Cycle
MshrFile::earliestReady() const
{
    ARL_ASSERT(!entries.empty(), "earliestReady on an empty MSHR file");
    Cycle earliest = entries.front().readyAt;
    for (const Entry &e : entries)
        earliest = std::min(earliest, e.readyAt);
    return earliest;
}

void
MshrFile::allocate(Addr line, Cycle ready_at)
{
    if (!limit)
        return;
    ARL_ASSERT(entries.size() < limit, "MSHR allocate while full");
    entries.push_back({line, ready_at});
    ++allocations;
    peakOccupancy = std::max<std::uint64_t>(peakOccupancy,
                                            entries.size());
    occupancyAtAllocate.add(entries.size());
}

void
MshrFile::reset()
{
    entries.clear();
}

} // namespace arl::cache
