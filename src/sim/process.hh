/**
 * @file
 * Architectural state of one running guest program.
 */

#ifndef ARL_SIM_PROCESS_HH
#define ARL_SIM_PROCESS_HH

#include <array>
#include <memory>
#include <string>

#include "common/random.hh"
#include "common/types.hh"
#include "vm/heap.hh"
#include "vm/layout.hh"
#include "vm/memory.hh"
#include "vm/program.hh"

namespace arl::sim
{

/**
 * A loaded guest process: registers, memory, heap, and region map.
 *
 * Construction performs the "exec": the data image is copied to
 * DataBase, $sp/$fp are pointed at the stack top, $gp at the data
 * base, and the PC at the program entry.
 */
class Process
{
  public:
    explicit Process(std::shared_ptr<const vm::Program> prog);

    /** The program being run. */
    const vm::Program &program() const { return *prog; }

    /** Shared handle to the program (for co-running simulators). */
    std::shared_ptr<const vm::Program> programHandle() const { return prog; }

    /** Guest memory. */
    vm::SparseMemory memory;

    /** Heap allocator behind malloc/free/sbrk. */
    vm::HeapAllocator heap;

    /** Address-to-region resolution for this process. */
    vm::RegionMap regions;

    /** General-purpose registers; index 0 reads as 0. */
    std::array<Word, 32> gpr{};

    /** FP registers (IEEE single bits). */
    std::array<Word, 32> fpr{};

    /** Program counter. */
    Addr pc = 0;

    /** True once the guest called Exit (or ran off a limit). */
    bool halted = false;

    /** Exit status passed to the Exit syscall. */
    Word exitCode = 0;

    /** Text accumulated by the Print* syscalls. */
    std::string output;

    /** Deterministic generator behind the Rand syscall. */
    Rng rng;

    /** Read GPR (enforces $zero == 0). */
    Word
    readGpr(RegIndex index) const
    {
        return index == 0 ? 0 : gpr[index];
    }

    /** Write GPR (writes to $zero are discarded). */
    void
    writeGpr(RegIndex index, Word value)
    {
        if (index != 0)
            gpr[index] = value;
    }

  private:
    std::shared_ptr<const vm::Program> prog;
};

} // namespace arl::sim

#endif // ARL_SIM_PROCESS_HH
