#include "sim/simulator.hh"

#include <bit>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "isa/registers.hh"
#include "obs/stats_registry.hh"
#include "sim/syscalls.hh"

namespace arl::sim
{

using isa::Opcode;
namespace reg = isa::reg;

namespace
{

float
asFloat(Word bits)
{
    return std::bit_cast<float>(bits);
}

Word
asBits(float value)
{
    return std::bit_cast<Word>(value);
}

/** Truncating float->int conversion with saturation (no UB). */
std::int32_t
truncToInt(float value)
{
    if (std::isnan(value))
        return 0;
    if (value >= 2147483648.0f)
        return std::numeric_limits<std::int32_t>::max();
    if (value < -2147483648.0f)
        return std::numeric_limits<std::int32_t>::min();
    return static_cast<std::int32_t>(value);
}

} // namespace

Simulator::Simulator(std::shared_ptr<const vm::Program> prog)
    : proc(prog),
      decoded(prog->decodeAll()),
      textBase(prog->textBase),
      textEnd(prog->textEnd())
{
}

void
Simulator::execSyscall()
{
    auto call = static_cast<Syscall>(proc.readGpr(reg::V0));
    Word a0 = proc.readGpr(reg::A0);
    switch (call) {
      case Syscall::PrintInt:
        proc.output += std::to_string(static_cast<SWord>(a0));
        break;
      case Syscall::PrintChar:
        proc.output += static_cast<char>(a0 & 0xff);
        break;
      case Syscall::Sbrk:
        proc.writeGpr(reg::V0, proc.heap.sbrk(a0));
        break;
      case Syscall::Exit:
        proc.halted = true;
        proc.exitCode = a0;
        break;
      case Syscall::Malloc: {
        Addr ptr = proc.heap.malloc(a0);
        if (ptr == 0)
            fatal("%s: guest heap exhausted (malloc of %u bytes)",
                  proc.program().name.c_str(), a0);
        proc.writeGpr(reg::V0, ptr);
        break;
      }
      case Syscall::Free:
        proc.heap.free(a0);
        break;
      case Syscall::Rand:
        proc.writeGpr(reg::V0, proc.rng.next32() & 0x7fffffffu);
        break;
      default:
        fatal("%s: unknown syscall %u at pc=0x%08x",
              proc.program().name.c_str(), proc.readGpr(reg::V0), proc.pc);
    }
}

bool
Simulator::step(StepInfo &out)
{
    if (proc.halted)
        return false;

    Addr pc = proc.pc;
    if (pc < textBase || pc >= textEnd || (pc & 3))
        panic("%s: PC escaped text: 0x%08x", proc.program().name.c_str(),
              pc);

    const isa::DecodedInst &inst = decoded[(pc - textBase) >> 2];
    const isa::OpInfo &info = inst.info();

    out = StepInfo{};
    out.pc = pc;
    out.seq = icount;
    out.inst = inst;
    out.gbh = gbh;
    out.cid = proc.readGpr(reg::Ra);

    Addr next_pc = pc + 4;

    auto rs = [&](RegIndex r) { return proc.readGpr(r); };
    auto srs = [&](RegIndex r) {
        return static_cast<SWord>(proc.readGpr(r));
    };
    auto wr = [&](RegIndex r, Word v) { proc.writeGpr(r, v); };
    auto frd = [&](RegIndex r) { return proc.fpr[r]; };
    auto fwr = [&](RegIndex r, Word v) { proc.fpr[r] = v; };
    auto branch = [&](bool taken) {
        out.isBranch = true;
        out.branchTaken = taken;
        gbh = (gbh << 1) | (taken ? 1u : 0u);
        if (taken)
            next_pc = isa::branchTarget(inst, pc);
    };
    Word uimm = static_cast<Word>(inst.imm) & 0xffffu;

    switch (inst.op) {
      // ---- integer R ----
      case Opcode::Add:
        wr(inst.rd, rs(inst.rs) + rs(inst.rt));
        break;
      case Opcode::Sub:
        wr(inst.rd, rs(inst.rs) - rs(inst.rt));
        break;
      case Opcode::Mul:
        wr(inst.rd,
           static_cast<Word>(static_cast<std::int64_t>(srs(inst.rs)) *
                             static_cast<std::int64_t>(srs(inst.rt))));
        break;
      case Opcode::Div: {
        SWord d = srs(inst.rt);
        if (d == 0)
            panic("%s: divide by zero at pc=0x%08x",
                  proc.program().name.c_str(), pc);
        std::int64_t q = static_cast<std::int64_t>(srs(inst.rs)) / d;
        wr(inst.rd, static_cast<Word>(q));
        break;
      }
      case Opcode::Rem: {
        SWord d = srs(inst.rt);
        if (d == 0)
            panic("%s: remainder by zero at pc=0x%08x",
                  proc.program().name.c_str(), pc);
        std::int64_t r = static_cast<std::int64_t>(srs(inst.rs)) % d;
        wr(inst.rd, static_cast<Word>(r));
        break;
      }
      case Opcode::And:
        wr(inst.rd, rs(inst.rs) & rs(inst.rt));
        break;
      case Opcode::Or:
        wr(inst.rd, rs(inst.rs) | rs(inst.rt));
        break;
      case Opcode::Xor:
        wr(inst.rd, rs(inst.rs) ^ rs(inst.rt));
        break;
      case Opcode::Nor:
        wr(inst.rd, ~(rs(inst.rs) | rs(inst.rt)));
        break;
      case Opcode::Sllv:
        wr(inst.rd, rs(inst.rs) << (rs(inst.rt) & 31));
        break;
      case Opcode::Srlv:
        wr(inst.rd, rs(inst.rs) >> (rs(inst.rt) & 31));
        break;
      case Opcode::Srav:
        wr(inst.rd,
           static_cast<Word>(srs(inst.rs) >>
                             static_cast<SWord>(rs(inst.rt) & 31)));
        break;
      case Opcode::Slt:
        wr(inst.rd, srs(inst.rs) < srs(inst.rt) ? 1 : 0);
        break;
      case Opcode::Sltu:
        wr(inst.rd, rs(inst.rs) < rs(inst.rt) ? 1 : 0);
        break;

      // ---- integer I ----
      case Opcode::Addi:
        wr(inst.rd, rs(inst.rs) + static_cast<Word>(inst.imm));
        break;
      case Opcode::Andi:
        wr(inst.rd, rs(inst.rs) & uimm);
        break;
      case Opcode::Ori:
        wr(inst.rd, rs(inst.rs) | uimm);
        break;
      case Opcode::Xori:
        wr(inst.rd, rs(inst.rs) ^ uimm);
        break;
      case Opcode::Slti:
        wr(inst.rd, srs(inst.rs) < inst.imm ? 1 : 0);
        break;
      case Opcode::Sltiu:
        wr(inst.rd,
           rs(inst.rs) < static_cast<Word>(inst.imm) ? 1 : 0);
        break;
      case Opcode::Lui:
        wr(inst.rd, uimm << 16);
        break;
      case Opcode::Sll:
        wr(inst.rd, rs(inst.rs) << (inst.imm & 31));
        break;
      case Opcode::Srl:
        wr(inst.rd, rs(inst.rs) >> (inst.imm & 31));
        break;
      case Opcode::Sra:
        wr(inst.rd,
           static_cast<Word>(srs(inst.rs) >> (inst.imm & 31)));
        break;

      // ---- memory ----
      case Opcode::Lw:
      case Opcode::Lh:
      case Opcode::Lhu:
      case Opcode::Lb:
      case Opcode::Lbu:
      case Opcode::Sw:
      case Opcode::Sh:
      case Opcode::Sb:
      case Opcode::Lwc1:
      case Opcode::Swc1: {
        Addr ea = rs(inst.rs) + static_cast<Word>(inst.imm);
        out.isMem = true;
        out.isLoad = info.isLoad;
        out.effAddr = ea;
        out.memSize = info.memSize;
        out.region = proc.regions.classify(ea);
        if (out.region != vm::Region::Data &&
            out.region != vm::Region::Heap &&
            out.region != vm::Region::Stack) {
            panic("%s: access to %s region at 0x%08x (pc=0x%08x, %s)",
                  proc.program().name.c_str(),
                  vm::regionName(out.region).c_str(), ea, pc,
                  isa::disassemble(inst, pc).c_str());
        }
        switch (inst.op) {
          case Opcode::Lw:
            wr(inst.rd, proc.memory.read32(ea));
            break;
          case Opcode::Lh:
            wr(inst.rd, static_cast<Word>(static_cast<std::int16_t>(
                            proc.memory.read16(ea))));
            break;
          case Opcode::Lhu:
            wr(inst.rd, proc.memory.read16(ea));
            break;
          case Opcode::Lb:
            wr(inst.rd, static_cast<Word>(static_cast<std::int8_t>(
                            proc.memory.read8(ea))));
            break;
          case Opcode::Lbu:
            wr(inst.rd, proc.memory.read8(ea));
            break;
          case Opcode::Sw:
            out.storeValue = rs(inst.rd);
            proc.memory.write32(ea, out.storeValue);
            break;
          case Opcode::Sh:
            out.storeValue = rs(inst.rd) & 0xffffu;
            proc.memory.write16(ea,
                                static_cast<std::uint16_t>(out.storeValue));
            break;
          case Opcode::Sb:
            out.storeValue = rs(inst.rd) & 0xffu;
            proc.memory.write8(ea,
                               static_cast<std::uint8_t>(out.storeValue));
            break;
          case Opcode::Lwc1:
            fwr(inst.rd, proc.memory.read32(ea));
            break;
          case Opcode::Swc1:
            out.storeValue = frd(inst.rd);
            proc.memory.write32(ea, out.storeValue);
            break;
          default:
            break;
        }
        break;
      }

      // ---- floating point ----
      case Opcode::FaddS:
        fwr(inst.rd, asBits(asFloat(frd(inst.rs)) + asFloat(frd(inst.rt))));
        break;
      case Opcode::FsubS:
        fwr(inst.rd, asBits(asFloat(frd(inst.rs)) - asFloat(frd(inst.rt))));
        break;
      case Opcode::FmulS:
        fwr(inst.rd, asBits(asFloat(frd(inst.rs)) * asFloat(frd(inst.rt))));
        break;
      case Opcode::FdivS:
        fwr(inst.rd, asBits(asFloat(frd(inst.rs)) / asFloat(frd(inst.rt))));
        break;
      case Opcode::FnegS:
        fwr(inst.rd, asBits(-asFloat(frd(inst.rs))));
        break;
      case Opcode::FmovS:
        fwr(inst.rd, frd(inst.rs));
        break;
      case Opcode::CvtSW:
        fwr(inst.rd,
            asBits(static_cast<float>(
                static_cast<SWord>(frd(inst.rs)))));
        break;
      case Opcode::CvtWS:
        fwr(inst.rd,
            static_cast<Word>(truncToInt(asFloat(frd(inst.rs)))));
        break;
      case Opcode::FeqS:
        wr(inst.rd,
           asFloat(frd(inst.rs)) == asFloat(frd(inst.rt)) ? 1 : 0);
        break;
      case Opcode::FltS:
        wr(inst.rd,
           asFloat(frd(inst.rs)) < asFloat(frd(inst.rt)) ? 1 : 0);
        break;
      case Opcode::FleS:
        wr(inst.rd,
           asFloat(frd(inst.rs)) <= asFloat(frd(inst.rt)) ? 1 : 0);
        break;
      case Opcode::Mtc1:
        fwr(inst.rd, rs(inst.rs));
        break;
      case Opcode::Mfc1:
        wr(inst.rd, frd(inst.rs));
        break;

      // ---- control transfer ----
      case Opcode::Beq:
        branch(rs(inst.rd) == rs(inst.rs));
        break;
      case Opcode::Bne:
        branch(rs(inst.rd) != rs(inst.rs));
        break;
      case Opcode::Blez:
        branch(srs(inst.rs) <= 0);
        break;
      case Opcode::Bgtz:
        branch(srs(inst.rs) > 0);
        break;
      case Opcode::Bltz:
        branch(srs(inst.rs) < 0);
        break;
      case Opcode::Bgez:
        branch(srs(inst.rs) >= 0);
        break;
      case Opcode::J:
        next_pc = isa::jumpTarget(inst, pc);
        break;
      case Opcode::Jal:
        out.isCall = true;
        wr(reg::Ra, pc + 4);
        next_pc = isa::jumpTarget(inst, pc);
        break;
      case Opcode::Jr:
        out.isReturn = (inst.rs == reg::Ra);
        next_pc = rs(inst.rs);
        break;
      case Opcode::Jalr: {
        out.isCall = true;
        Word target = rs(inst.rs);
        wr(inst.rd, pc + 4);
        next_pc = target;
        break;
      }

      // ---- system ----
      case Opcode::Syscall:
        execSyscall();
        break;
      case Opcode::Nop:
        break;

      case Opcode::NumOpcodes:
        panic("invalid opcode at pc=0x%08x", pc);
    }

    // Capture the produced value for the timing model.
    out.dest = isa::instDest(inst);
    if (out.dest != isa::NoReg) {
        out.result = out.dest < isa::FprBase
                         ? proc.readGpr(out.dest)
                         : proc.fpr[out.dest - isa::FprBase];
    }

    out.nextPc = next_pc;
    proc.pc = next_pc;
    ++icount;
    return true;
}

InstCount
Simulator::run(InstCount max_insts, const StepHook &hook)
{
    InstCount executed = 0;
    StepInfo info;
    while (!proc.halted && (max_insts == 0 || executed < max_insts)) {
        if (!step(info))
            break;
        ++executed;
        if (hook)
            hook(info);
    }
    return executed;
}

void
Simulator::registerStats(obs::StatsRegistry &registry,
                         const std::string &prefix) const
{
    registry.addCounter(prefix + ".instructions", &icount,
                        "instructions executed functionally");
    registry.addFormula(prefix + ".halted",
                        [this] { return proc.halted ? 1.0 : 0.0; },
                        "1 once the guest exited");
}

} // namespace arl::sim
