/**
 * @file
 * Guest system-call numbers and conventions.
 *
 * Convention (SPIM-flavoured): the call number is passed in $v0,
 * the first argument in $a0, and the result comes back in $v0.
 */

#ifndef ARL_SIM_SYSCALLS_HH
#define ARL_SIM_SYSCALLS_HH

#include <cstdint>

namespace arl::sim
{

/** Guest system calls handled by the simulator. */
enum class Syscall : std::uint32_t
{
    PrintInt = 1,    ///< append decimal($a0) to the process output
    PrintChar = 2,   ///< append char($a0) to the process output
    Sbrk = 9,        ///< $v0 = old break; grow heap by $a0 bytes
    Exit = 10,       ///< halt with status $a0
    Malloc = 13,     ///< $v0 = heap pointer for $a0 bytes (0 = OOM)
    Free = 14,       ///< release heap pointer $a0
    Rand = 17        ///< $v0 = deterministic pseudo-random 31-bit value
};

} // namespace arl::sim

#endif // ARL_SIM_SYSCALLS_HH
