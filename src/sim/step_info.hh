/**
 * @file
 * Per-instruction record emitted by the functional simulator.
 *
 * One StepInfo carries everything downstream consumers need:
 *  - the profilers (§3) read pc / region / base register;
 *  - the predictors read pc, the pre-execution global branch
 *    history (gbh) and caller id (cid), and the actual region;
 *  - the out-of-order timing model (§4) additionally reads the
 *    produced register value (for value-prediction verification),
 *    the effective address, and control-flow outcomes (its perfect
 *    front end follows the recorded path).
 */

#ifndef ARL_SIM_STEP_INFO_HH
#define ARL_SIM_STEP_INFO_HH

#include "common/types.hh"
#include "isa/inst.hh"
#include "isa/operands.hh"
#include "vm/layout.hh"

namespace arl::sim
{

/** Dynamic record of one executed instruction. */
struct StepInfo
{
    /** PC of the instruction. */
    Addr pc = 0;
    /** Dynamic sequence number (0-based). */
    InstCount seq = 0;
    /** The decoded instruction. */
    isa::DecodedInst inst;

    // --- memory ---
    bool isMem = false;
    bool isLoad = false;
    Addr effAddr = 0;
    std::uint8_t memSize = 0;
    vm::Region region = vm::Region::Unknown;

    // --- control flow ---
    bool isBranch = false;     ///< conditional branch
    bool branchTaken = false;
    bool isCall = false;       ///< jal/jalr
    bool isReturn = false;     ///< jr $ra
    Addr nextPc = 0;           ///< architectural successor PC

    // --- run-time context *before* execution (predictor inputs) ---
    Word gbh = 0;              ///< global branch history register
    Word cid = 0;              ///< caller id = current $ra value

    // --- produced value ---
    isa::FlatReg dest = isa::NoReg;
    Word result = 0;           ///< value written to dest (if any)
    Word storeValue = 0;       ///< value written to memory (stores)
};

} // namespace arl::sim

#endif // ARL_SIM_STEP_INFO_HH
