/**
 * @file
 * Functional (1-instruction-per-step) simulator of the ARL ISA.
 *
 * This is the reproduction's analogue of SimpleScalar's sim-safe /
 * sim-profile: it executes the program architecturally, maintains
 * the global branch-history register, and hands a StepInfo record
 * per instruction to an optional callback.  The §4 timing model
 * co-simulates by pulling StepInfos from an embedded functional
 * simulator (equivalent to the paper's perfect I-cache + perfect
 * branch prediction front end).
 */

#ifndef ARL_SIM_SIMULATOR_HH
#define ARL_SIM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "sim/process.hh"
#include "sim/step_info.hh"

namespace arl::obs
{
class StatsRegistry;
}

namespace arl::sim
{

/** Functional interpreter for one process. */
class Simulator
{
  public:
    /** Per-instruction observer callback. */
    using StepHook = std::function<void(const StepInfo &)>;

    explicit Simulator(std::shared_ptr<const vm::Program> prog);

    /** The process being simulated. */
    Process &process() { return proc; }
    const Process &process() const { return proc; }

    /**
     * Execute one instruction.
     * @param out filled with the dynamic record of the instruction.
     * @return false when the process has already halted (no
     *         instruction was executed).
     */
    bool step(StepInfo &out);

    /**
     * Run until the process halts or @p max_insts more instructions
     * have executed (0 = unlimited).
     * @param hook optional per-instruction observer.
     * @return number of instructions executed by this call.
     */
    InstCount run(InstCount max_insts = 0, const StepHook &hook = nullptr);

    /** Total instructions executed so far. */
    InstCount instCount() const { return icount; }

    /** Current global branch-history register. */
    Word branchHistory() const { return gbh; }

    /** True when the process has halted. */
    bool halted() const { return proc.halted; }

    /**
     * Register functional-execution stats (instruction count, halt
     * state, exit status) under "<prefix>.".
     */
    void registerStats(obs::StatsRegistry &registry,
                       const std::string &prefix) const;

  private:
    /** Execute the syscall selected by $v0. */
    void execSyscall();

    Process proc;
    /** Pre-decoded text (index = (pc - textBase) / 4). */
    std::vector<isa::DecodedInst> decoded;
    Addr textBase;
    Addr textEnd;
    Word gbh = 0;
    InstCount icount = 0;
};

} // namespace arl::sim

#endif // ARL_SIM_SIMULATOR_HH
