/**
 * @file
 * Abstraction over "where the committed instruction stream comes
 * from".
 *
 * The §4 timing model's perfect front end dispatches the
 * architectural instruction stream; historically that stream always
 * came from an embedded live functional simulator.  A StepSource
 * decouples the consumer from the producer so the same core can be
 * fed by
 *
 *  - a live sim::Simulator (SimulatorSource, the default), or
 *  - a recorded instruction trace (trace::ReplaySource), which is
 *    what the parallel sweep engine uses: record once, replay into
 *    any number of concurrently simulated machine configurations.
 *
 * The contract mirrors Simulator::step(): next() produces the next
 * retired instruction or returns false, delivered() counts the
 * instructions handed out so far, and exhausted() reports that no
 * further instruction will ever be produced.
 */

#ifndef ARL_SIM_STEP_SOURCE_HH
#define ARL_SIM_STEP_SOURCE_HH

#include "common/types.hh"
#include "sim/simulator.hh"
#include "sim/step_info.hh"

namespace arl::sim
{

/** A pull-based stream of retired instructions. */
class StepSource
{
  public:
    virtual ~StepSource() = default;

    /**
     * Produce the next instruction.
     * @return false when the stream has ended (no step produced).
     */
    virtual bool next(StepInfo &out) = 0;

    /** Instructions delivered so far. */
    virtual InstCount delivered() const = 0;

    /** True once the stream can produce no further instruction. */
    virtual bool exhausted() const = 0;

    /**
     * Reposition the stream so the next instruction produced is
     * dynamic instruction @p n, counting the skipped prefix as
     * delivered.  Only seekable sources (a recorded trace) support
     * this; a live simulator cannot jump without executing.
     * @return false when the source is not seekable (the default).
     */
    virtual bool
    seekTo(InstCount n)
    {
        (void)n;
        return false;
    }
};

/** StepSource over a live functional simulator (not owned). */
class SimulatorSource final : public StepSource
{
  public:
    /** @param sim simulator to pull from; must outlive the source. */
    explicit SimulatorSource(Simulator &sim) : sim(sim) {}

    bool next(StepInfo &out) override { return sim.step(out); }
    InstCount delivered() const override { return sim.instCount(); }
    bool exhausted() const override { return sim.halted(); }

  private:
    Simulator &sim;
};

} // namespace arl::sim

#endif // ARL_SIM_STEP_SOURCE_HH
