#include "sim/process.hh"

#include "common/logging.hh"
#include "isa/registers.hh"

namespace arl::sim
{

Process::Process(std::shared_ptr<const vm::Program> program_in)
    : heap(program_in->heapBase(), vm::layout::HeapCeiling),
      regions(program_in->heapBase()),
      prog(std::move(program_in))
{
    ARL_ASSERT(!prog->text.empty(), "empty program %s",
               prog->name.c_str());

    // Install the initialised data image.
    if (!prog->data.empty())
        memory.writeBlock(vm::layout::DataBase, prog->data.data(),
                          prog->data.size());

    // Initial register conventions.
    gpr.fill(0);
    fpr.fill(0);
    gpr[isa::reg::Sp] = vm::layout::StackTop;
    gpr[isa::reg::Fp] = vm::layout::StackTop;
    gpr[isa::reg::Gp] = vm::layout::DataBase;
    pc = prog->entry;
    rng.reseed(0xa11ce5 ^ std::hash<std::string>{}(prog->name));
}

} // namespace arl::sim
