#include "profile/region_profiler.hh"

#include "common/logging.hh"

namespace arl::profile
{

std::string
regionClassName(RegionClass cls)
{
    switch (cls) {
      case RegionClass::D:
        return "D";
      case RegionClass::H:
        return "H";
      case RegionClass::S:
        return "S";
      case RegionClass::DH:
        return "D/H";
      case RegionClass::DS:
        return "D/S";
      case RegionClass::HS:
        return "H/S";
      case RegionClass::DHS:
        return "D/H/S";
      case RegionClass::NumClasses:
        break;
    }
    return "?";
}

RegionClass
regionClassFromMask(unsigned mask)
{
    switch (mask & 7u) {
      case 1:
        return RegionClass::D;
      case 2:
        return RegionClass::H;
      case 4:
        return RegionClass::S;
      case 3:
        return RegionClass::DH;
      case 5:
        return RegionClass::DS;
      case 6:
        return RegionClass::HS;
      case 7:
        return RegionClass::DHS;
      default:
        panic("regionClassFromMask: empty mask");
    }
}

std::uint64_t
RegionProfile::staticTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : staticCounts)
        total += c;
    return total;
}

std::uint64_t
RegionProfile::dynamicTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : dynamicCounts)
        total += c;
    return total;
}

std::uint64_t
RegionProfile::staticMultiRegion() const
{
    return staticCounts[static_cast<unsigned>(RegionClass::DH)] +
           staticCounts[static_cast<unsigned>(RegionClass::DS)] +
           staticCounts[static_cast<unsigned>(RegionClass::HS)] +
           staticCounts[static_cast<unsigned>(RegionClass::DHS)];
}

std::uint64_t
RegionProfile::dynamicMultiRegion() const
{
    return dynamicCounts[static_cast<unsigned>(RegionClass::DH)] +
           dynamicCounts[static_cast<unsigned>(RegionClass::DS)] +
           dynamicCounts[static_cast<unsigned>(RegionClass::HS)] +
           dynamicCounts[static_cast<unsigned>(RegionClass::DHS)];
}

double
RegionProfile::staticMultiRegionPct() const
{
    std::uint64_t total = staticTotal();
    return total ? 100.0 * static_cast<double>(staticMultiRegion()) /
                       static_cast<double>(total)
                 : 0.0;
}

double
RegionProfile::dynamicMultiRegionPct() const
{
    std::uint64_t total = dynamicTotal();
    return total ? 100.0 * static_cast<double>(dynamicMultiRegion()) /
                       static_cast<double>(total)
                 : 0.0;
}

RegionProfile
RegionProfiler::profile() const
{
    RegionProfile out;
    out.totalInstructions = instructions;
    out.dynamicLoads = loads;
    out.dynamicStores = stores;
    out.regionRefs = regionRefs;
    for (const auto &[pc, info] : perPc) {
        unsigned cls = static_cast<unsigned>(regionClassFromMask(info.mask));
        ++out.staticCounts[cls];
        out.dynamicCounts[cls] += info.dynamicRefs;
    }
    return out;
}

unsigned
RegionProfiler::maskForPc(Addr pc) const
{
    auto it = perPc.find(pc);
    return it == perPc.end() ? 0 : it->second.mask;
}

} // namespace arl::profile
