/**
 * @file
 * Sliding-instruction-window interleaving statistics (paper §3.2.2,
 * Table 2).
 *
 * Every executed instruction ("cycle" in the functional profiler),
 * the profiler counts how many of the last W instructions were
 * memory references to each region, and accumulates the mean and the
 * standard deviation of those per-region counts.  A region is
 * "strictly bursty" when its standard deviation exceeds its mean.
 */

#ifndef ARL_PROFILE_WINDOW_PROFILER_HH
#define ARL_PROFILE_WINDOW_PROFILER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "sim/step_info.hh"
#include "vm/layout.hh"

namespace arl::profile
{

/** Per-region mean/σ of in-window access counts. */
struct WindowStats
{
    unsigned windowSize = 0;
    std::array<double, vm::NumDataRegions> mean{};
    std::array<double, vm::NumDataRegions> stddev{};
    std::uint64_t samples = 0;

    /** The paper's "strictly bursty" predicate for one region. */
    bool
    strictlyBursty(unsigned region_index) const
    {
        return mean[region_index] < stddev[region_index];
    }
};

/** Tracks one window size over an instruction stream. */
class WindowProfiler
{
  public:
    explicit WindowProfiler(unsigned window_size);

    /** Record one executed instruction. */
    void
    observe(const sim::StepInfo &step)
    {
        // Evict the instruction leaving the window.
        std::uint8_t old_code = ring[head];
        if (old_code)
            --counts[old_code - 1];

        // Insert the new instruction (0 = not a memory reference).
        std::uint8_t code =
            step.isMem ? static_cast<std::uint8_t>(
                             static_cast<unsigned>(step.region) + 1)
                       : 0;
        ring[head] = code;
        if (code)
            ++counts[code - 1];
        head = (head + 1) % ring.size();

        // Sample once the window is full, once per instruction.
        if (filled < ring.size()) {
            ++filled;
            if (filled < ring.size())
                return;
        }
        for (unsigned r = 0; r < vm::NumDataRegions; ++r)
            stats[r].add(static_cast<double>(counts[r]));
    }

    /** Aggregate results. */
    WindowStats stats_summary() const;

    /** Window size being tracked. */
    unsigned windowSize() const { return static_cast<unsigned>(ring.size()); }

  private:
    std::vector<std::uint8_t> ring;
    std::size_t head = 0;
    std::size_t filled = 0;
    std::array<std::uint32_t, vm::NumDataRegions> counts{};
    std::array<RunningStat, vm::NumDataRegions> stats;
};

} // namespace arl::profile

#endif // ARL_PROFILE_WINDOW_PROFILER_HH
