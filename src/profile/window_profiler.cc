#include "profile/window_profiler.hh"

#include "common/logging.hh"

namespace arl::profile
{

WindowProfiler::WindowProfiler(unsigned window_size)
    : ring(window_size, 0)
{
    ARL_ASSERT(window_size > 0);
}

WindowStats
WindowProfiler::stats_summary() const
{
    WindowStats out;
    out.windowSize = windowSize();
    for (unsigned r = 0; r < vm::NumDataRegions; ++r) {
        out.mean[r] = stats[r].mean();
        out.stddev[r] = stats[r].stddev();
    }
    out.samples = stats[0].count();
    return out;
}

} // namespace arl::profile
