/**
 * @file
 * Per-static-instruction access-region profiling (paper §3.2, Fig 2).
 *
 * For every static memory instruction (identified by PC) the profiler
 * records the *set* of regions it touched and its dynamic reference
 * count.  Instructions are then classified into the paper's seven
 * classes: D, H, S (single-region) and D/H, D/S, H/S, D/H/S
 * (multi-region).
 */

#ifndef ARL_PROFILE_REGION_PROFILER_HH
#define ARL_PROFILE_REGION_PROFILER_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "sim/step_info.hh"
#include "vm/layout.hh"

namespace arl::profile
{

/** The paper's seven region classes, Fig 2 order. */
enum class RegionClass : std::uint8_t
{
    D = 0,    ///< data only
    H,        ///< heap only
    S,        ///< stack only
    DH,       ///< data and heap
    DS,       ///< data and stack
    HS,       ///< heap and stack
    DHS,      ///< all three
    NumClasses
};

/** Number of region classes. */
constexpr unsigned NumRegionClasses =
    static_cast<unsigned>(RegionClass::NumClasses);

/** Display name ("D", "D/H", ...). */
std::string regionClassName(RegionClass cls);

/** Map a region-set bitmask (bit0=D, bit1=H, bit2=S) to its class. */
RegionClass regionClassFromMask(unsigned mask);

/** Aggregated profile of one program run. */
struct RegionProfile
{
    /** Static instruction count per class. */
    std::array<std::uint64_t, NumRegionClasses> staticCounts{};
    /** Dynamic reference count per class. */
    std::array<std::uint64_t, NumRegionClasses> dynamicCounts{};
    /** Dynamic reference count per region (D/H/S). */
    std::array<std::uint64_t, vm::NumDataRegions> regionRefs{};

    std::uint64_t totalInstructions = 0;  ///< all dynamic instructions
    std::uint64_t dynamicLoads = 0;
    std::uint64_t dynamicStores = 0;

    /** Total static memory instructions observed. */
    std::uint64_t staticTotal() const;
    /** Total dynamic memory references. */
    std::uint64_t dynamicTotal() const;
    /** Static instructions touching >1 region. */
    std::uint64_t staticMultiRegion() const;
    /** Dynamic references from multi-region instructions. */
    std::uint64_t dynamicMultiRegion() const;
    /** Fraction (0..100) helpers for reports. */
    double staticMultiRegionPct() const;
    double dynamicMultiRegionPct() const;
};

/**
 * Observes a functional-simulation run and produces a RegionProfile.
 * Feed every StepInfo to observe(); call profile() at the end.
 */
class RegionProfiler
{
  public:
    /** Record one executed instruction. */
    void
    observe(const sim::StepInfo &step)
    {
        ++instructions;
        if (!step.isMem)
            return;
        if (step.isLoad)
            ++loads;
        else
            ++stores;
        unsigned region_bit = regionBit(step.region);
        PcInfo &info = perPc[step.pc];
        info.mask |= region_bit;
        ++info.dynamicRefs;
        ++regionRefs[regionIndex(step.region)];
    }

    /** Aggregate everything observed so far. */
    RegionProfile profile() const;

    /** Region-set mask of one static instruction (0 if never seen). */
    unsigned maskForPc(Addr pc) const;

  private:
    struct PcInfo
    {
        unsigned mask = 0;
        std::uint64_t dynamicRefs = 0;
    };

    static unsigned
    regionBit(vm::Region region)
    {
        return 1u << regionIndex(region);
    }

    static unsigned
    regionIndex(vm::Region region)
    {
        return static_cast<unsigned>(region);
    }

    std::unordered_map<Addr, PcInfo> perPc;
    std::array<std::uint64_t, vm::NumDataRegions> regionRefs{};
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

} // namespace arl::profile

#endif // ARL_PROFILE_REGION_PROFILER_HH
