/**
 * @file
 * 099.go substitute: recursive game-tree search over global board
 * arrays.
 *
 * Character reproduced (paper Table 2 / Fig 2): data-dominant with a
 * bursty stack component from the recursion's frame traffic, and —
 * like the real 099.go — *no heap at all*: every structure is a
 * statically allocated array.
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{
constexpr unsigned BoardCells = 361;       // 19 x 19
constexpr unsigned Branching = 8;
} // namespace

std::shared_ptr<vm::Program>
buildGoLike(unsigned scale)
{
    ProgramBuilder b("go_like");

    b.globalWord("eval_calls", 0);
    b.globalWord("checksum", 0);
    b.globalArray("board", BoardCells);
    b.globalArray("weights", BoardCells);

    b.emitStartStub("main");

    // ---- word evaluate() -> v0: weighted row scan of the board ----
    b.beginFunction("evaluate", 2);
    b.lwGlobal(r::T0, "eval_calls");        // $gp (data)
    b.addi(r::T1, r::T0, 1);
    b.swGlobal(r::T1, "eval_calls");
    b.andi(r::T0, r::T0, 15);               // row 0..15
    b.li(r::T1, 19 * 4);
    b.mul(r::T0, r::T0, r::T1);             // row byte offset
    b.la(r::T2, "board");
    b.add(r::T2, r::T2, r::T0);
    b.la(r::T3, "weights");
    b.add(r::T3, r::T3, r::T0);
    b.li(r::V0, 0);
    b.sw(r::V0, b.localOffset(0), r::Sp);   // zero the accumulator slot
    b.li(r::T4, 19);                        // cells in a row
    Label scan = b.label();
    b.bind(scan);
    b.lw(r::T5, 0, r::T2);                  // board cell (data)
    b.lw(r::T6, 0, r::T3);                  // weight (data)
    b.mul(r::T7, r::T5, r::T6);
    b.add(r::V0, r::V0, r::T7);
    b.add(r::V0, r::V0, r::T5);             // stones score on their own
    b.add(r::V0, r::V0, r::T6);
    b.addi(r::T2, r::T2, 4);
    b.addi(r::T3, r::T3, 4);
    b.addi(r::T4, r::T4, -1);
    b.bgtz(r::T4, scan);
    b.lw(r::T5, b.localOffset(0), r::Sp);   // one spill pair per call
    b.add(r::V0, r::V0, r::T5);
    b.sw(r::V0, b.localOffset(0), r::Sp);
    b.fnReturn();
    b.endFunction();

    // ---- word search(depth /*a0*/, player /*a1*/) -> v0 ----
    b.beginFunction("search", 2,
                    {r::S0, r::S1, r::S2, r::S3, r::S4, r::S5});
    Label recurse = b.label();
    Label moves = b.label();
    Label skip = b.label();
    Label after = b.label();
    Label out = b.label();

    b.bgtz(r::A0, recurse);
    b.jal("evaluate");                      // leaf: static evaluation
    b.j(out);

    b.bind(recurse);
    b.move(r::S0, r::A0);                   // depth
    b.move(r::S1, r::A1);                   // player
    b.li(r::S3, -100000);                   // best score
    b.la(r::S5, "board");
    // Deterministic move cursor seeded by (depth, player).
    b.li(r::T0, 89);
    b.mul(r::T0, r::S0, r::T0);
    b.li(r::T1, 37);
    b.mul(r::T1, r::S1, r::T1);
    b.add(r::S2, r::T0, r::T1);
    b.li(r::S4, Branching);                 // trials

    b.bind(moves);
    b.andi(r::T0, r::S2, 255);              // cell index (< 361)
    b.sll(r::T0, r::T0, 2);
    b.add(r::T1, r::S5, r::T0);             // &board[cell]
    b.lw(r::T2, 0, r::T1);                  // occupied? (data)
    b.bne(r::T2, r::Zero, skip);

    b.addi(r::T3, r::S1, 1);
    b.sw(r::T3, 0, r::T1);                  // place stone (data)
    b.addi(r::A0, r::S0, -1);
    b.li(r::T4, 1);
    b.sub(r::A1, r::T4, r::S1);
    b.jal("search");                        // recurse
    // Undo: recompute the cell address (temps died at the call).
    b.andi(r::T0, r::S2, 255);
    b.sll(r::T0, r::T0, 2);
    b.add(r::T1, r::S5, r::T0);
    b.sw(r::Zero, 0, r::T1);                // remove stone (data)
    // Negamax-flavoured best tracking.
    b.sub(r::T5, r::Zero, r::V0);
    b.slt(r::T6, r::S3, r::T5);
    b.beq(r::T6, r::Zero, after);
    b.move(r::S3, r::T5);
    b.j(after);

    b.bind(skip);
    b.addi(r::S2, r::S2, 7);                // probe a nearby cell

    b.bind(after);
    b.addi(r::S2, r::S2, 13);
    b.addi(r::S4, r::S4, -1);
    b.bgtz(r::S4, moves);
    b.move(r::V0, r::S3);

    b.bind(out);
    b.fnReturn();
    b.endFunction();

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1, r::S2});
    // Scatter 30 initial stones with the global LCG.
    b.li(r::S0, 30);
    Label seed = b.label();
    b.bind(seed);
    b.jal("lcg_next");
    b.andi(r::T0, r::V0, 255);
    b.sll(r::T0, r::T0, 2);
    b.la(r::T1, "board");
    b.add(r::T1, r::T1, r::T0);
    b.li(r::T2, 1);
    b.sw(r::T2, 0, r::T1);                  // stone (data)
    b.jal("lcg_next");
    b.andi(r::S2, r::V0, 255);              // weight cell (call-safe)
    b.jal("lcg_next");
    b.andi(r::T2, r::V0, 63);
    b.sll(r::T0, r::S2, 2);
    b.la(r::T1, "weights");
    b.add(r::T1, r::T1, r::T0);
    b.sw(r::T2, 0, r::T1);                  // weight (data)
    b.addi(r::S0, r::S0, -1);
    b.bgtz(r::S0, seed);

    b.li(r::S1, static_cast<std::int32_t>(12 * scale));
    b.li(r::S2, 0);                         // running checksum
    Label games = b.label();
    Label done = b.label();
    b.bind(games);
    b.blez(r::S1, done);
    b.li(r::A0, 3);                         // search depth
    b.andi(r::A1, r::S1, 1);                // alternate player
    b.jal("search");
    b.add(r::S2, r::S2, r::V0);
    b.addi(r::S1, r::S1, -1);
    b.j(games);
    b.bind(done);
    b.move(r::A0, r::S2);
    b.li(r::V0, 1);                         // print_int(checksum)
    b.syscall();
    b.li(r::V0, 0);
    b.fnReturn();
    b.endFunction();

    emitLcgGlobal(b);

    return b.finish();
}

} // namespace arl::workloads
