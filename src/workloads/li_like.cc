/**
 * @file
 * 130.li substitute: a lisp-style evaluator — cons cells on the heap
 * driven by ctak-like deep recursion.
 *
 * Character reproduced (paper Table 2): stack-heaviest of the
 * integer codes after vortex (the recursion), with a strong heap
 * component (cons cells) and few data-segment references — li keeps
 * almost everything in dynamically allocated cells.  130.li ran
 * ctak.lsp in the paper; we run a tak recursion whose leaves cons
 * and walk heap lists.
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

std::shared_ptr<vm::Program>
buildLiLike(unsigned scale)
{
    ProgramBuilder b("li_like");

    b.globalWord("cons_count", 0);
    b.globalWord("free_list", 0);
    b.globalWord("list_check", 0);

    b.emitStartStub("main");

    // ---- cell *cons(car /*a0*/, cdr /*a1*/) -> v0 ----
    // Reuses a freed cell when available (li's GC free list),
    // otherwise mallocs a fresh 2-word cell.
    b.beginFunction("cons", 1);
    {
        Label fresh = b.label();
        Label have = b.label();
        b.sw(r::A0, b.localOffset(0), r::Sp);    // protect car (stack)
        b.lwGlobal(r::T0, "free_list");
        b.beq(r::T0, r::Zero, fresh);
        b.lw(r::T1, 4, r::T0);                   // next free (heap)
        b.swGlobal(r::T1, "free_list");
        b.move(r::V0, r::T0);
        b.j(have);
        b.bind(fresh);
        b.li(r::A0, 8);
        b.li(r::V0, 13);                         // malloc syscall
        b.syscall();
        b.bind(have);
        b.lw(r::T2, b.localOffset(0), r::Sp);    // reload car
        b.sw(r::T2, 0, r::V0);                   // car (heap)
        b.sw(r::A1, 4, r::V0);                   // cdr (heap)
        b.lwGlobal(r::T3, "cons_count");
        b.addi(r::T3, r::T3, 1);
        b.swGlobal(r::T3, "cons_count");
        b.fnReturn();
        b.endFunction();
    }

    // ---- word list_sum(cell* /*a0*/) -> v0: walk a heap list ----
    b.beginLeaf("list_sum");
    {
        Label loop = b.label();
        Label done = b.label();
        b.li(r::V0, 0);
        b.bind(loop);
        b.beq(r::A0, r::Zero, done);
        b.lw(r::T0, 0, r::A0);                   // car (heap)
        b.add(r::V0, r::V0, r::T0);
        b.lw(r::A0, 4, r::A0);                   // cdr (heap)
        b.j(loop);
        b.bind(done);
        b.fnReturn();
        b.endFunction();
    }

    // ---- void release(cell* /*a0*/): push a list onto free_list ----
    b.beginLeaf("release");
    {
        Label loop = b.label();
        Label done = b.label();
        b.bind(loop);
        b.beq(r::A0, r::Zero, done);
        b.lw(r::T0, 4, r::A0);                   // next (heap)
        b.lwGlobal(r::T1, "free_list");
        b.sw(r::T1, 4, r::A0);                   // link into free list
        b.swGlobal(r::A0, "free_list");
        b.move(r::A0, r::T0);
        b.j(loop);
        b.bind(done);
        b.fnReturn();
        b.endFunction();
    }

    // ---- word tak(x /*a0*/, y /*a1*/, z /*a2*/) -> v0 ----
    // if (x <= y) { leaf: cons a 3-list, sum it, release it }
    // else tak(tak(x-1,y,z), tak(y-1,z,x), tak(z-1,x,y))
    b.beginFunction("tak", 2, {r::S0, r::S1, r::S2, r::S3, r::S4});
    {
        Label leaf = b.label();
        b.slt(r::T0, r::A1, r::A0);              // y < x ?
        b.beq(r::T0, r::Zero, leaf);

        b.move(r::S0, r::A0);
        b.move(r::S1, r::A1);
        b.move(r::S2, r::A2);
        b.addi(r::A0, r::S0, -1);
        b.move(r::A1, r::S1);
        b.move(r::A2, r::S2);
        b.jal("tak");
        b.move(r::S3, r::V0);
        b.addi(r::A0, r::S1, -1);
        b.move(r::A1, r::S2);
        b.move(r::A2, r::S0);
        b.jal("tak");
        b.move(r::S4, r::V0);
        b.addi(r::A0, r::S2, -1);
        b.move(r::A1, r::S0);
        b.move(r::A2, r::S1);
        b.jal("tak");
        b.move(r::A2, r::V0);
        b.move(r::A0, r::S3);
        b.move(r::A1, r::S4);
        b.jal("tak");
        b.fnReturn();

        b.bind(leaf);
        // Build (x y z) as cons cells, sum, and release.
        b.move(r::S0, r::A0);
        b.move(r::S1, r::A1);
        b.move(r::S2, r::A2);
        b.move(r::A0, r::S2);
        b.li(r::A1, 0);
        b.jal("cons");
        b.move(r::A1, r::V0);
        b.move(r::A0, r::S1);
        b.jal("cons");
        b.move(r::A1, r::V0);
        b.move(r::A0, r::S0);
        b.jal("cons");
        b.move(r::S3, r::V0);
        b.move(r::A0, r::S3);
        b.jal("list_sum");
        // Fold the list sum into a global check value; tak itself
        // must return the *bounded* classic value (z) or the
        // recursion's arguments diverge.
        b.lwGlobal(r::T0, "list_check");
        b.add(r::T0, r::T0, r::V0);
        b.swGlobal(r::T0, "list_check");
        b.move(r::A0, r::S3);
        b.jal("release");
        b.move(r::V0, r::S2);                    // classic tak: return z
        b.fnReturn();
        b.endFunction();
    }

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1});
    {
        Label loop = b.label();
        Label done = b.label();
        b.li(r::S0, static_cast<std::int32_t>(2 * scale));
        b.li(r::S1, 0);
        b.bind(loop);
        b.blez(r::S0, done);
        b.li(r::A0, 16);
        b.li(r::A1, 10);
        b.li(r::A2, 5);
        b.jal("tak");
        b.add(r::S1, r::S1, r::V0);
        b.addi(r::S0, r::S0, -1);
        b.j(loop);
        b.bind(done);
        b.lwGlobal(r::T0, "cons_count");
        b.add(r::S1, r::S1, r::T0);
        b.lwGlobal(r::T1, "list_check");
        b.add(r::A0, r::S1, r::T1);
        b.li(r::V0, 1);                          // print checksum
        b.syscall();
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    return b.finish();
}

} // namespace arl::workloads
