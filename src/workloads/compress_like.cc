/**
 * @file
 * 129.compress substitute: an LZW-flavoured coder over data-segment
 * buffers.
 *
 * Character reproduced (paper Table 2): strongly data-dominant
 * (~10 data refs per 32 instructions), near-zero heap, very few
 * stack references — compress keeps its buffers and hash tables in
 * static data and runs one tight loop with only an occasional
 * output-helper call.
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{

constexpr unsigned InputBytes = 65536;
constexpr unsigned HashWords = 4096;   // keys; codes follow at +16 KB

} // namespace

std::shared_ptr<vm::Program>
buildCompressLike(unsigned scale)
{
    ProgramBuilder b("compress_like");

    // ---- data segment ----
    b.globalWord("next_code", 256);
    b.globalWord("out_count", 0);
    b.globalWord("checksum", 0);
    b.globalBytes("input", InputBytes);
    b.globalArray("htab", HashWords);      // keys
    b.globalArray("codetab", HashWords);   // codes, at htab+16384
    b.globalArray("output", InputBytes);   // worst case 1 code/byte

    b.emitStartStub("main");

    // ---- void output_code(code /*a0*/, word *out /*a1*/) -> new out
    b.beginFunction("output_code", 1);
    b.sw(r::A0, b.localOffset(0), r::Sp);   // spill (stack)
    b.lwGlobal(r::T0, "out_count");         // $gp (rule 3, data)
    b.addi(r::T0, r::T0, 1);
    b.swGlobal(r::T0, "out_count");
    b.lw(r::T1, b.localOffset(0), r::Sp);   // reload (stack)
    b.sw(r::T1, 0, r::A1);                  // emit code (rule 4, data)
    b.addi(r::V0, r::A1, 4);
    b.fnReturn();
    b.endFunction();

    // ---- void init_input(): fill the input buffer with LCG bytes
    b.beginFunction("init_input", 0);
    b.la(r::T8, "input");
    b.la(r::T9, "input");
    b.li(r::At, InputBytes);
    b.add(r::T9, r::T9, r::At);
    b.li(r::T7, 99991);                     // register-resident LCG
    Label fill = b.label();
    emitLcgStep(b, r::T0, r::T7, r::T1);
    b.bind(fill);
    b.sb(r::T0, 0, r::T8);                  // data store (rule 4)
    emitLcgStep(b, r::T0, r::T7, r::T1);
    b.addi(r::T8, r::T8, 1);
    b.bne(r::T8, r::T9, fill);
    b.fnReturn();
    b.endFunction();

    // ---- word compress_pass() -> v0 (codes emitted) ----
    b.beginFunction("compress_pass", 2,
                    {r::S0, r::S1, r::S2, r::S3, r::S4, r::S5});
    // Clear the hash table through the shared memset helper (a
    // rule-4 pointer store whose region is data at this call site).
    b.la(r::A0, "htab");
    b.li(r::A1, HashWords);
    b.li(r::A2, -1);
    b.jal("memset_w");

    b.la(r::S0, "input");                   // in cursor
    b.la(r::S1, "input");
    b.li(r::At, InputBytes);
    b.add(r::S1, r::S1, r::At);             // in end
    b.la(r::S2, "htab");
    b.li(r::S3, 0);                         // prefix code
    b.la(r::S4, "output");                  // out cursor

    Label loop = b.label();
    Label match = b.label();
    Label next = b.label();
    b.bind(loop);
    b.lbu(r::T0, 0, r::S0);                 // input byte (data)
    b.sll(r::T1, r::S3, 8);
    b.or_(r::T1, r::T1, r::T0);             // key = (prefix<<8)|c
    b.srl(r::T2, r::T1, 7);                 // shift-xor hash (as in
    b.xor_(r::T2, r::T2, r::T1);            // the real compress)
    b.sll(r::T3, r::T2, 3);
    b.xor_(r::T2, r::T2, r::T3);
    b.andi(r::T2, r::T2, HashWords - 1);
    b.sll(r::T2, r::T2, 2);
    b.add(r::T3, r::S2, r::T2);             // &htab[h]
    b.lw(r::T4, 0, r::T3);                  // probe key (data)
    b.beq(r::T4, r::T1, match);

    // Miss: install the pair, emit the prefix code.
    b.sw(r::T1, 0, r::T3);                  // store key (data)
    b.lwGlobal(r::T5, "next_code");         // $gp scalar
    b.sw(r::T5, 16384, r::T3);              // store code (data)
    b.addi(r::T5, r::T5, 1);
    b.swGlobal(r::T5, "next_code");
    b.move(r::A0, r::S3);
    b.move(r::A1, r::S4);
    b.jal("output_code");                   // stack burst
    b.move(r::S4, r::V0);
    b.lbu(r::T0, 0, r::S0);                 // re-read byte after call
    b.move(r::S3, r::T0);                   // restart prefix
    b.j(next);

    b.bind(match);
    b.lw(r::S3, 16384, r::T3);              // extend prefix (data)

    b.bind(next);
    b.addi(r::S0, r::S0, 1);
    b.bne(r::S0, r::S1, loop);

    // Checksum the emitted codes through the cross-region summer.
    b.la(r::A0, "output");
    b.la(r::T0, "output");
    b.sub(r::A1, r::S4, r::T0);
    b.srl(r::A1, r::A1, 2);
    b.jal("sum_w");
    b.lwGlobal(r::T0, "checksum");
    b.xor_(r::T0, r::T0, r::V0);
    b.swGlobal(r::T0, "checksum");
    b.fnReturn();
    b.endFunction();

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1});
    b.jal("init_input");
    b.li(r::S0, 0);
    b.li(r::S1, static_cast<std::int32_t>(2 * scale));
    Label passes = b.label();
    Label done = b.label();
    b.bind(passes);
    b.beq(r::S0, r::S1, done);
    b.jal("compress_pass");
    b.addi(r::S0, r::S0, 1);
    b.j(passes);
    b.bind(done);
    b.lwGlobal(r::A0, "checksum");
    b.li(r::V0, 1);                         // print_int(checksum)
    b.syscall();
    b.li(r::V0, 0);
    b.fnReturn();
    b.endFunction();

    emitMemsetWords(b);
    emitSumWords(b);

    return b.finish();
}

} // namespace arl::workloads
