/**
 * @file
 * 102.swim substitute: 2-D shallow-water-style stencil sweeps over
 * three static FP arrays.
 *
 * Character reproduced (paper Table 2): data-dominant FP code with
 * *zero heap* — swim's arrays are all static — and a moderate stack
 * component from the per-row kernel calls.  The three sweeps per
 * timestep (U, V, P phases) give the near-bursty data signature
 * (6.06 mean vs 5.09 σ in the paper).
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{
constexpr unsigned Dim = 64;
constexpr unsigned GridWords = Dim * Dim;
} // namespace

std::shared_ptr<vm::Program>
buildSwimLike(unsigned scale)
{
    ProgramBuilder b("swim_like");

    b.globalWord("steps_done", 0);
    b.globalArray("U", GridWords);
    b.globalArray("V", GridWords);
    b.globalArray("P", GridWords);

    b.emitStartStub("main");

    // ---- void row_kernel(srcA /*a0*/, srcB /*a1*/, dst /*a2*/,
    //                      cols /*a3*/) ----
    // dst[i] = 0.25*(A[i-1]+A[i+1]) + 0.5*B[i]; pointer (rule-4)
    // FP accesses whose region is data at every call site, with one
    // FP spill pair per row (compiled-FP-code realism).
    b.beginFunction("row_kernel", 4, {r::S0});
    {
        // Unrolled by two (as EGCS -O3 with unrolling emits), with
        // independent FP registers, spill slots, and accumulators so
        // both lanes can be in flight at once.
        b.fli(4, 0.25f);
        b.fli(5, 0.5f);
        b.fli(6, 0.0f);                       // accumulator, lane A
        b.fmov(13, 6);                        // accumulator, lane B
        Label loop = b.label();
        Label done = b.label();
        b.bind(loop);
        b.blez(r::A3, done);
        // Lane A: column i.
        b.lwc1(0, -4, r::A0);                 // A[i-1] (data)
        b.lwc1(1, 4, r::A0);                  // A[i+1] (data)
        b.lwc1(2, 0, r::A1);                  // B[i]   (data)
        b.fadd(0, 0, 1);
        b.fmul(0, 0, 4);
        b.swc1(0, b.localOffset(0), r::Sp);   // FP temp spill (stack)
        b.fmul(2, 2, 5);
        b.lwc1(3, b.localOffset(0), r::Sp);   // reload (stack)
        b.fadd(0, 3, 2);
        b.swc1(0, 0, r::A2);                  // dst[i] (data)
        b.fadd(6, 6, 0);
        // Lane B: column i+1.
        b.lwc1(14, 0, r::A0);                 // A[i]   (data)
        b.lwc1(15, 8, r::A0);                 // A[i+2] (data)
        b.lwc1(16, 4, r::A1);                 // B[i+1] (data)
        b.fadd(14, 14, 15);
        b.fmul(14, 14, 4);
        b.swc1(14, b.localOffset(2), r::Sp);  // spill (stack)
        b.fmul(16, 16, 5);
        b.lwc1(17, b.localOffset(2), r::Sp);  // reload (stack)
        b.fadd(14, 17, 16);
        b.swc1(14, 4, r::A2);                 // dst[i+1] (data)
        b.fadd(13, 13, 14);
        b.addi(r::A0, r::A0, 8);
        b.addi(r::A1, r::A1, 8);
        b.addi(r::A2, r::A2, 8);
        b.addi(r::A3, r::A3, -2);
        b.j(loop);
        b.bind(done);
        b.fadd(6, 6, 13);
        b.swc1(6, b.localOffset(1), r::Sp);   // FP spill (stack)
        b.lwc1(7, b.localOffset(1), r::Sp);   // reload
        b.mfc1(r::V0, 7);
        b.fnReturn();
        b.endFunction();
    }

    // ---- word sweep(src_a /*a0*/, src_b /*a1*/, dst /*a2*/) ----
    // Row loop over the interior, calling row_kernel per row.
    b.beginFunction("sweep", 1, {r::S0, r::S1, r::S2, r::S3, r::S4});
    {
        b.move(r::S0, r::A0);
        b.move(r::S1, r::A1);
        b.move(r::S2, r::A2);
        b.li(r::S3, Dim - 2);                 // interior rows
        b.li(r::S4, 0);
        Label rows = b.label();
        Label done = b.label();
        b.bind(rows);
        b.blez(r::S3, done);
        // advance to next row start (+1 col in).
        b.addi(r::A0, r::S0, Dim * 4 + 4);
        b.addi(r::A1, r::S1, Dim * 4 + 4);
        b.addi(r::A2, r::S2, Dim * 4 + 4);
        b.li(r::A3, Dim - 2);
        b.jal("row_kernel");
        b.add(r::S4, r::S4, r::V0);
        b.addi(r::S0, r::S0, Dim * 4);
        b.addi(r::S1, r::S1, Dim * 4);
        b.addi(r::S2, r::S2, Dim * 4);
        b.addi(r::S3, r::S3, -1);
        b.j(rows);
        b.bind(done);
        b.move(r::V0, r::S4);
        b.fnReturn();
        b.endFunction();
    }

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1});
    {
        // Fill U and V with small values; P zero.
        b.la(r::T0, "U");
        b.la(r::T1, "V");
        b.li(r::T2, GridWords);
        b.li(r::T7, 31337);
        b.fli(8, 1.0f / 256.0f);
        Label fill = b.label();
        b.bind(fill);
        emitLcgStep(b, r::T3, r::T7, r::T4);
        b.andi(r::T3, r::T3, 255);
        b.mtc1(9, r::T3);
        b.cvtsw(9, 9);
        b.fmul(9, 9, 8);                      // value in [0,1)
        b.swc1(9, 0, r::T0);                  // U (data)
        b.swc1(9, 0, r::T1);                  // V (data)
        b.addi(r::T0, r::T0, 4);
        b.addi(r::T1, r::T1, 4);
        b.addi(r::T2, r::T2, -1);
        b.bgtz(r::T2, fill);

        b.li(r::S0, static_cast<std::int32_t>(10 * scale));
        b.li(r::S1, 0);
        Label steps = b.label();
        Label done = b.label();
        b.bind(steps);
        b.blez(r::S0, done);
        // Three phase sweeps: P = f(U,V); U = f(V,P); V = f(P,U).
        b.la(r::A0, "U");
        b.la(r::A1, "V");
        b.la(r::A2, "P");
        b.jal("sweep");
        b.add(r::S1, r::S1, r::V0);
        b.la(r::A0, "V");
        b.la(r::A1, "P");
        b.la(r::A2, "U");
        b.jal("sweep");
        b.add(r::S1, r::S1, r::V0);
        b.la(r::A0, "P");
        b.la(r::A1, "U");
        b.la(r::A2, "V");
        b.jal("sweep");
        b.add(r::S1, r::S1, r::V0);
        b.lwGlobal(r::T0, "steps_done");
        b.addi(r::T0, r::T0, 1);
        b.swGlobal(r::T0, "steps_done");
        b.addi(r::S0, r::S0, -1);
        b.j(steps);
        b.bind(done);
        b.move(r::A0, r::S1);
        b.li(r::V0, 1);
        b.syscall();
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    return b.finish();
}

} // namespace arl::workloads
