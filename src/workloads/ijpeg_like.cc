/**
 * @file
 * 132.ijpeg substitute: blocked 8x8 transforms over heap image
 * planes, staged through a stack-resident work buffer.
 *
 * Character reproduced (paper Table 2): the only program whose data,
 * heap, AND stack accesses are all strictly bursty — each block runs
 * three distinct phases (heap gather, in-place stack transform,
 * quantise+writeback), so no region sees a steady stream.  Heap >
 * stack > data, as in the paper (3.45 / 4.10 / 1.41 — stack and heap
 * close together).
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{
constexpr unsigned ImageDim = 64;                     // 64x64 words
constexpr unsigned ImageWords = ImageDim * ImageDim;
constexpr unsigned BlockDim = 8;
} // namespace

std::shared_ptr<vm::Program>
buildIjpegLike(unsigned scale)
{
    ProgramBuilder b("ijpeg_like");

    b.globalWord("in_plane", 0);
    b.globalWord("out_plane", 0);
    b.globalWord("blocks_done", 0);
    b.globalArray("quant", BlockDim * BlockDim);

    b.emitStartStub("main");

    // ---- word do_block(bx /*a0*/, by /*a1*/) -> v0 ----
    // locals: 64-word block buffer + 2 scratch slots.
    b.beginFunction("do_block", 66, {r::S0, r::S1, r::S2, r::S3, r::S4});
    {
        b.move(r::S0, r::A0);                     // bx
        b.move(r::S1, r::A1);                     // by

        // Phase 1: gather the block from the heap plane into the
        // stack buffer (heap loads + stack stores, bursty).
        b.lwGlobal(r::S2, "in_plane");
        // src = plane + ((by*8*64) + bx*8) * 4
        b.li(r::T0, BlockDim * ImageDim * 4);
        b.mul(r::T1, r::S1, r::T0);
        b.sll(r::T2, r::S0, 5);                   // bx*8*4
        b.add(r::T1, r::T1, r::T2);
        b.add(r::S2, r::S2, r::T1);               // src cursor
        b.move(r::S3, r::Sp);                     // dst = stack buffer
        b.li(r::S4, BlockDim);                    // row counter
        Label gather_row = b.label();
        b.bind(gather_row);
        for (unsigned i = 0; i < BlockDim; ++i) {
            b.lw(r::T3, static_cast<std::int32_t>(i * 4), r::S2);
            b.sw(r::T3, static_cast<std::int32_t>(i * 4), r::S3);
        }
        b.addi(r::S2, r::S2, ImageDim * 4);
        b.addi(r::S3, r::S3, BlockDim * 4);
        b.addi(r::S4, r::S4, -1);
        b.bgtz(r::S4, gather_row);

        // Phase 2: butterfly row transform, fully unrolled with
        // $sp-relative addressing — exactly how a compiler addresses
        // a fixed-size local array with constant indices (static
        // rule 2 resolves these).  Pure stack burst.
        for (unsigned row = 0; row < BlockDim; ++row) {
            for (unsigned i = 0; i < BlockDim / 2; ++i) {
                std::int32_t lo = b.localOffset(row * BlockDim + i);
                std::int32_t hi =
                    b.localOffset(row * BlockDim + BlockDim - 1 - i);
                b.lw(r::T0, lo, r::Sp);
                b.lw(r::T1, hi, r::Sp);
                b.add(r::T2, r::T0, r::T1);
                b.sub(r::T3, r::T0, r::T1);
                b.sra(r::T2, r::T2, 1);
                b.sw(r::T2, lo, r::Sp);
                b.sw(r::T3, hi, r::Sp);
            }
        }

        // Phase 3: quantise (data loads) and write back to the output
        // plane (heap stores), accumulating a block checksum.
        b.lwGlobal(r::S2, "out_plane");
        b.li(r::T0, BlockDim * ImageDim * 4);
        b.mul(r::T1, r::S1, r::T0);
        b.sll(r::T2, r::S0, 5);
        b.add(r::T1, r::T1, r::T2);
        b.add(r::S2, r::S2, r::T1);               // dst cursor
        b.move(r::S3, r::Sp);
        b.la(r::S4, "quant");
        b.li(r::V0, 0);
        b.li(r::T9, BlockDim);
        Label quant_row = b.label();
        b.bind(quant_row);
        for (unsigned i = 0; i < BlockDim; ++i) {
            std::int32_t off = static_cast<std::int32_t>(i * 4);
            b.lw(r::T0, off, r::S3);              // block (stack)
            b.lw(r::T1, off, r::S4);              // quant (data)
            b.sra(r::T2, r::T0, 2);
            b.add(r::T2, r::T2, r::T1);
            b.sw(r::T2, off, r::S2);              // out plane (heap)
            b.add(r::V0, r::V0, r::T2);
        }
        b.addi(r::S2, r::S2, ImageDim * 4);
        b.addi(r::S3, r::S3, BlockDim * 4);
        b.addi(r::T9, r::T9, -1);
        b.bgtz(r::T9, quant_row);

        // Phase 4: "entropy coding" — register-resident bit packing
        // over the block checksum (almost no memory traffic; this is
        // what separates the block's bursts from each other).
        b.li(r::T0, 128);
        b.move(r::T1, r::V0);
        Label entropy = b.label();
        b.bind(entropy);
        b.sll(r::T2, r::T1, 5);
        b.xor_(r::T1, r::T1, r::T2);
        b.srl(r::T3, r::T1, 7);
        b.xor_(r::T1, r::T1, r::T3);
        b.addi(r::T1, r::T1, 0x1234);
        b.addi(r::T0, r::T0, -1);
        b.bgtz(r::T0, entropy);
        b.xor_(r::V0, r::V0, r::T1);

        b.lwGlobal(r::T0, "blocks_done");
        b.addi(r::T0, r::T0, 1);
        b.swGlobal(r::T0, "blocks_done");
        b.fnReturn();
        b.endFunction();
    }

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1, r::S2, r::S3});
    {
        // Allocate planes.
        b.li(r::A0, ImageWords * 4);
        b.li(r::V0, 13);
        b.syscall();
        b.swGlobal(r::V0, "in_plane");
        b.li(r::A0, ImageWords * 4);
        b.li(r::V0, 13);
        b.syscall();
        b.swGlobal(r::V0, "out_plane");

        // Fill the input plane (heap stores) and the quant table.
        b.lwGlobal(r::T0, "in_plane");
        b.li(r::T1, ImageWords);
        b.li(r::T7, 777);
        Label fill = b.label();
        b.bind(fill);
        emitLcgStep(b, r::T2, r::T7, r::T3);
        b.andi(r::T2, r::T2, 255);
        b.sw(r::T2, 0, r::T0);
        b.addi(r::T0, r::T0, 4);
        b.addi(r::T1, r::T1, -1);
        b.bgtz(r::T1, fill);
        b.la(r::T0, "quant");
        b.li(r::T1, BlockDim * BlockDim);
        b.li(r::T2, 1);
        Label qfill = b.label();
        b.bind(qfill);
        b.sw(r::T2, 0, r::T0);
        b.addi(r::T2, r::T2, 3);
        b.addi(r::T0, r::T0, 4);
        b.addi(r::T1, r::T1, -1);
        b.bgtz(r::T1, qfill);

        // Passes over all 8x8 blocks of the plane.
        b.li(r::S0, static_cast<std::int32_t>(14 * scale));  // passes
        b.li(r::S3, 0);                            // checksum
        Label pass = b.label();
        Label pass_done = b.label();
        b.bind(pass);
        b.blez(r::S0, pass_done);
        b.li(r::S1, ImageDim / BlockDim);          // by
        Label yloop = b.label();
        Label ydone = b.label();
        b.bind(yloop);
        b.blez(r::S1, ydone);
        b.li(r::S2, ImageDim / BlockDim);          // bx
        Label xloop = b.label();
        Label xdone = b.label();
        b.bind(xloop);
        b.blez(r::S2, xdone);
        b.addi(r::A0, r::S2, -1);
        b.addi(r::A1, r::S1, -1);
        b.jal("do_block");
        b.add(r::S3, r::S3, r::V0);
        b.addi(r::S2, r::S2, -1);
        b.j(xloop);
        b.bind(xdone);
        b.addi(r::S1, r::S1, -1);
        b.j(yloop);
        b.bind(ydone);
        b.addi(r::S0, r::S0, -1);
        b.j(pass);
        b.bind(pass_done);
        b.move(r::A0, r::S3);
        b.li(r::V0, 1);
        b.syscall();
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    return b.finish();
}

} // namespace arl::workloads
