/**
 * @file
 * 107.mgrid substitute: 3-D multigrid-style stencil relaxation over
 * static FP arrays.
 *
 * Character reproduced (paper Table 2): the most data-dominant
 * program in the suite (9.57 data refs per 32 instructions) with a
 * *steady* (non-bursty, σ 2.98 < mean) data stream — one tight
 * triple loop with almost no calls — zero heap, and a small stack
 * component.
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{
constexpr unsigned Dim = 16;
constexpr unsigned PlaneWords = Dim * Dim;
constexpr unsigned GridWords = Dim * Dim * Dim;
} // namespace

std::shared_ptr<vm::Program>
buildMgridLike(unsigned scale)
{
    ProgramBuilder b("mgrid_like");

    b.globalWord("relax_calls", 0);
    b.globalArray("GRID", GridWords);
    b.globalArray("RHS", GridWords);

    b.emitStartStub("main");

    // ---- word relax(src /*a0*/, dst /*a1*/) -> v0 ----
    // One 7-point Jacobi sweep from src into dst (the caller
    // ping-pongs GRID and RHS).  The loop is unrolled by two with
    // independent accumulators and spill chains, as the paper's
    // EGCS -O3 + loop unrolling would emit; this is what lets an FP
    // code demand more than two cache ports per cycle.
    b.beginFunction("relax", 4, {r::S0, r::S1, r::S2, r::S3});
    {
        constexpr std::int32_t row = static_cast<std::int32_t>(Dim) * 4;
        constexpr std::int32_t plane =
            static_cast<std::int32_t>(PlaneWords) * 4;
        b.fli(10, 1.0f / 8.0f);
        b.fli(11, 0.0f);                      // accumulator, even pts
        b.fmov(13, 11);                       // accumulator, odd pts
        b.fmov(12, 11);                       // spill-check chain A
        b.fmov(15, 11);                       // spill-check chain B
        b.move(r::S0, r::A0);                 // src plane
        b.move(r::S1, r::A1);                 // dst plane
        b.li(r::S2, PlaneWords + Dim + 1);                 // idx
        b.li(r::S3, GridWords - PlaneWords - Dim - 2);     // limit
        Label loop = b.label();
        Label done = b.label();
        b.bind(loop);
        b.slt(r::T0, r::S2, r::S3);
        b.beq(r::T0, r::Zero, done);
        b.sll(r::T1, r::S2, 2);
        b.add(r::T2, r::S0, r::T1);           // &src[idx]
        b.add(r::T3, r::S1, r::T1);           // &dst[idx]
        // Even point.
        b.lwc1(0, -4, r::T2);                 // x-1     (data)
        b.lwc1(1, 4, r::T2);                  // x+1     (data)
        b.lwc1(2, -row, r::T2);
        b.lwc1(3, row, r::T2);
        b.lwc1(4, -plane, r::T2);
        b.lwc1(5, plane, r::T2);
        b.lwc1(6, 0, r::T2);                  // centre  (data)
        b.fadd(0, 0, 1);
        b.fadd(2, 2, 3);
        b.fadd(4, 4, 5);
        b.fadd(0, 0, 2);
        b.fadd(0, 0, 4);
        b.fadd(0, 0, 6);
        b.fmul(0, 0, 10);                     // / 8
        b.swc1(0, b.localOffset(1), r::Sp);   // spill (stack)
        b.swc1(0, 0, r::T3);                  // dst[idx] (data)
        b.fadd(11, 11, 0);
        // Odd point (independent registers and accumulators).
        b.lwc1(14, 0, r::T2);
        b.lwc1(16, 8, r::T2);
        b.lwc1(17, 4 - row, r::T2);
        b.lwc1(18, 4 + row, r::T2);
        b.lwc1(19, 4 - plane, r::T2);
        b.lwc1(20, 4 + plane, r::T2);
        b.lwc1(21, 4, r::T2);                 // centre  (data)
        b.fadd(14, 14, 16);
        b.fadd(17, 17, 18);
        b.fadd(19, 19, 20);
        b.fadd(14, 14, 17);
        b.fadd(14, 14, 19);
        b.fadd(14, 14, 21);
        b.fmul(14, 14, 10);
        b.swc1(14, b.localOffset(2), r::Sp);  // spill (stack)
        b.swc1(14, 4, r::T3);                 // dst[idx+1] (data)
        b.fadd(13, 13, 14);
        // Fold the spilled copies through separate check chains.
        b.lwc1(7, b.localOffset(1), r::Sp);   // reload (stack)
        b.fadd(12, 12, 7);
        b.lwc1(22, b.localOffset(2), r::Sp);  // reload (stack)
        b.fadd(15, 15, 22);
        b.addi(r::S2, r::S2, 2);
        b.j(loop);
        b.bind(done);
        b.lwGlobal(r::T4, "relax_calls");
        b.addi(r::T4, r::T4, 1);
        b.swGlobal(r::T4, "relax_calls");
        b.fadd(11, 11, 13);
        b.fadd(12, 12, 15);
        b.fadd(11, 11, 12);
        b.swc1(11, b.localOffset(0), r::Sp);  // spill checksum (stack)
        b.lwc1(23, b.localOffset(0), r::Sp);
        b.cvtws(23, 23);
        b.mfc1(r::V0, 23);
        b.fnReturn();
        b.endFunction();
    }

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1});
    {
        // Fill GRID and RHS.
        b.la(r::T0, "GRID");
        b.la(r::T1, "RHS");
        b.li(r::T2, GridWords);
        b.li(r::T7, 4242);
        b.fli(8, 1.0f / 512.0f);
        Label fill = b.label();
        b.bind(fill);
        emitLcgStep(b, r::T3, r::T7, r::T4);
        b.andi(r::T3, r::T3, 255);
        b.mtc1(9, r::T3);
        b.cvtsw(9, 9);
        b.fmul(9, 9, 8);
        b.swc1(9, 0, r::T0);
        b.swc1(9, 0, r::T1);
        b.addi(r::T0, r::T0, 4);
        b.addi(r::T1, r::T1, 4);
        b.addi(r::T2, r::T2, -1);
        b.bgtz(r::T2, fill);

        b.li(r::S0, static_cast<std::int32_t>(24 * scale));
        b.li(r::S1, 0);
        Label steps = b.label();
        Label done = b.label();
        b.bind(steps);
        b.blez(r::S0, done);
        // Ping-pong between the two grids.
        b.andi(r::T0, r::S0, 1);
        Label pong = b.label();
        Label relaxed = b.label();
        b.beq(r::T0, r::Zero, pong);
        b.la(r::A0, "GRID");
        b.la(r::A1, "RHS");
        b.j(relaxed);
        b.bind(pong);
        b.la(r::A0, "RHS");
        b.la(r::A1, "GRID");
        b.bind(relaxed);
        b.jal("relax");
        b.add(r::S1, r::S1, r::V0);
        b.addi(r::S0, r::S0, -1);
        b.j(steps);
        b.bind(done);
        b.move(r::A0, r::S1);
        b.li(r::V0, 1);
        b.syscall();
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    return b.finish();
}

} // namespace arl::workloads
