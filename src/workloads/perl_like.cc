/**
 * @file
 * 134.perl substitute: string hashing and associative-array
 * operations over heap-allocated strings.
 *
 * Character reproduced (paper Table 2 / Fig 2): stack > heap > data
 * (6.29 / 4.79 / 2.06 per 32 in the paper).  The stack component
 * comes from a per-character recursive hash (perl's recursive-descent
 * interpretation), the heap component from string bytes and chain
 * nodes, and the small data component from the global bucket array.
 * Like m88ksim, perl shows multi-region instructions in the paper;
 * here the shared byte-counting helper is called with both heap
 * strings and a stack-resident key buffer.
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{
constexpr unsigned Buckets = 1024;
constexpr unsigned MaxStr = 24;
} // namespace

std::shared_ptr<vm::Program>
buildPerlLike(unsigned scale)
{
    ProgramBuilder b("perl_like");

    b.globalWord("insert_count", 0);
    b.globalWord("hit_count", 0);
    b.globalArray("buckets", Buckets);
    b.globalBytes("class_tab", 256);      // perl-ish char-class table

    b.emitStartStub("main");

    // ---- word hash_rec(byte *s /*a0*/, len /*a1*/) -> v0 ----
    // One recursion level per character: perl-style stack pressure.
    b.beginFunction("hash_rec", 1, {r::S0, r::S1});
    {
        Label base = b.label();
        b.blez(r::A1, base);
        b.move(r::S0, r::A0);
        b.move(r::S1, r::A1);
        b.addi(r::A0, r::S0, 1);
        b.addi(r::A1, r::S1, -1);
        b.jal("hash_rec");
        b.lbu(r::T0, 0, r::S0);           // string byte (heap/stack)
        b.la(r::T2, "class_tab");
        b.add(r::T2, r::T2, r::T0);
        b.lbu(r::T3, 0, r::T2);           // char class (data)
        b.li(r::T1, 31);
        b.mul(r::V0, r::V0, r::T1);
        b.add(r::V0, r::V0, r::T0);
        b.add(r::V0, r::V0, r::T3);
        b.fnReturn();
        b.bind(base);
        b.li(r::V0, 5381);
        b.fnReturn();
        b.endFunction();
    }

    // ---- void insert(str /*a0*/, len /*a1*/, hash /*a2*/) ----
    b.beginFunction("insert", 1, {r::S0, r::S1, r::S2});
    {
        b.move(r::S0, r::A0);
        b.move(r::S1, r::A2);
        // node = malloc(12): {hash, str, next}
        b.li(r::A0, 12);
        b.li(r::V0, 13);
        b.syscall();
        b.move(r::S2, r::V0);
        b.sw(r::S1, 0, r::S2);            // hash (heap)
        b.sw(r::S0, 4, r::S2);            // str ptr (heap)
        b.andi(r::T0, r::S1, Buckets - 1);
        b.sll(r::T0, r::T0, 2);
        b.la(r::T1, "buckets");
        b.add(r::T1, r::T1, r::T0);
        b.lw(r::T2, 0, r::T1);            // old head (data)
        b.sw(r::T2, 8, r::S2);            // next (heap)
        b.sw(r::S2, 0, r::T1);            // new head (data)
        b.lwGlobal(r::T3, "insert_count");
        b.addi(r::T3, r::T3, 1);
        b.swGlobal(r::T3, "insert_count");
        b.fnReturn();
        b.endFunction();
    }

    // ---- word lookup(hash /*a0*/) -> v0: walk a chain ----
    b.beginLeaf("lookup");
    {
        Label walk = b.label();
        Label done = b.label();
        Label miss = b.label();
        b.andi(r::T0, r::A0, Buckets - 1);
        b.sll(r::T0, r::T0, 2);
        b.la(r::T1, "buckets");
        b.add(r::T1, r::T1, r::T0);
        b.lw(r::T2, 0, r::T1);            // head (data)
        b.bind(walk);
        b.beq(r::T2, r::Zero, miss);
        b.lw(r::T3, 0, r::T2);            // node hash (heap)
        b.beq(r::T3, r::A0, done);
        b.lw(r::T2, 8, r::T2);            // next (heap)
        b.j(walk);
        b.bind(done);
        b.lwGlobal(r::T4, "hit_count");
        b.addi(r::T4, r::T4, 1);
        b.swGlobal(r::T4, "hit_count");
        b.li(r::V0, 1);
        b.fnReturn();
        b.bind(miss);
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    // ---- word process(seed /*a0*/) -> v0 ----
    // Make a heap string, hash it recursively, insert, and also hash
    // a stack-resident key copy (multi-region byte loads).
    b.beginFunction("process", 8, {r::S0, r::S1, r::S2, r::S3});
    {
        b.move(r::S0, r::A0);
        b.andi(r::S1, r::S0, MaxStr - 9);
        b.addi(r::S1, r::S1, 8);          // len 8..23
        // Heap string.
        b.addi(r::A0, r::S1, 1);
        b.li(r::V0, 13);
        b.syscall();
        b.move(r::S2, r::V0);
        // Fill it (heap byte stores) and mirror the first 8 bytes
        // into a stack key buffer (stack byte stores).
        b.move(r::T0, r::S2);
        b.move(r::T1, r::S1);
        b.move(r::T2, r::S0);
        Label fill = b.label();
        b.bind(fill);
        b.andi(r::T3, r::T2, 255);
        b.sb(r::T3, 0, r::T0);            // string byte (heap)
        b.li(r::T4, 17);
        b.mul(r::T2, r::T2, r::T4);
        b.addi(r::T2, r::T2, 3);
        b.addi(r::T0, r::T0, 1);
        b.addi(r::T1, r::T1, -1);
        b.bgtz(r::T1, fill);
        // Stack key copy (8 bytes at locals 0..1).
        b.lw(r::T5, 0, r::S2);            // heap word
        b.sw(r::T5, b.localOffset(0), r::Sp);
        b.lw(r::T5, 4, r::S2);
        b.sw(r::T5, b.localOffset(1), r::Sp);

        // Hash the heap string (recursive; heap byte loads).
        b.move(r::A0, r::S2);
        b.move(r::A1, r::S1);
        b.jal("hash_rec");
        b.move(r::S3, r::V0);
        // Hash the stack key (same static loads now hit the stack).
        b.addi(r::A0, r::Sp, b.localOffset(0));
        b.li(r::A1, 8);
        b.jal("hash_rec");
        b.add(r::S3, r::S3, r::V0);

        b.move(r::A0, r::S2);
        b.move(r::A1, r::S1);
        b.move(r::A2, r::S3);
        b.jal("insert");
        // Scan the heap string once more (word granularity).
        b.move(r::A0, r::S2);
        b.srl(r::A1, r::S1, 2);
        b.jal("sum_w");
        b.sw(r::V0, b.localOffset(3), r::Sp)  /* string checksum */;
        // Hit lookup, then a near-miss lookup that walks the whole
        // chain (perl's failed pattern matches).
        b.move(r::A0, r::S3);
        b.jal("lookup");
        b.sw(r::V0, b.localOffset(2), r::Sp);
        b.xori(r::A0, r::S3, 1);
        b.jal("lookup");
        b.lw(r::T0, b.localOffset(2), r::Sp);
        b.add(r::V0, r::V0, r::T0);
        b.lw(r::T1, b.localOffset(3), r::Sp);
        b.add(r::V0, r::V0, r::T1);
        b.add(r::V0, r::V0, r::S3);
        b.fnReturn();
        b.endFunction();
    }

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1});
    {
        // Seed the char-class table (one data byte per entry).
        b.la(r::T0, "class_tab");
        b.li(r::T1, 256);
        b.li(r::T2, 1);
        Label ctab = b.label();
        b.bind(ctab);
        b.sb(r::T2, 0, r::T0);
        b.addi(r::T2, r::T2, 7);
        b.andi(r::T2, r::T2, 31);
        b.addi(r::T0, r::T0, 1);
        b.addi(r::T1, r::T1, -1);
        b.bgtz(r::T1, ctab);

        Label loop = b.label();
        Label done = b.label();
        b.li(r::S0, static_cast<std::int32_t>(9000 * scale));
        b.li(r::S1, 0);
        b.bind(loop);
        b.blez(r::S0, done);
        b.move(r::A0, r::S0);
        b.jal("process");
        b.add(r::S1, r::S1, r::V0);
        b.addi(r::S0, r::S0, -1);
        b.j(loop);
        b.bind(done);
        b.lwGlobal(r::T0, "hit_count");
        b.add(r::A0, r::S1, r::T0);
        b.li(r::V0, 1);
        b.syscall();
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    emitSumWords(b);

    return b.finish();
}

} // namespace arl::workloads
