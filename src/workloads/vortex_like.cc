/**
 * @file
 * 147.vortex substitute: an object database manipulated through deep
 * chains of small procedures.
 *
 * Character reproduced (paper Table 2): *extreme* stack dominance
 * (11.81 stack refs per 32 instructions — the highest in the suite)
 * with a moderate heap component (the objects) and few data refs.
 * Vortex's style — every operation filtered through many layers of
 * small validating/dispatching functions — means most memory traffic
 * is frame save/restore and argument spilling, which is exactly what
 * this program emits: a five-deep call chain per object operation,
 * each level with a full frame and several callee-saved registers.
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{
constexpr unsigned NumObjects = 512;
constexpr unsigned ObjectWords = 16;
} // namespace

std::shared_ptr<vm::Program>
buildVortexLike(unsigned scale)
{
    ProgramBuilder b("vortex_like");

    b.globalWord("op_count", 0);
    b.globalArray("obj_table", NumObjects);   // pointers to heap objects
    b.globalArray("schema", 64);              // per-type field schema

    b.emitStartStub("main");

    // Layer 5 (innermost): word field_hash(obj /*a0*/, i /*a1*/)
    b.beginFunction("field_hash", 2, {r::S0});
    {
        b.move(r::S0, r::A0);
        b.sw(r::A1, b.localOffset(0), r::Sp);     // spill index
        b.sll(r::T0, r::A1, 2);
        b.add(r::T0, r::S0, r::T0);
        b.lw(r::V0, 0, r::T0);                    // field (heap)
        b.li(r::T1, 2654435);
        b.mul(r::V0, r::V0, r::T1);
        b.lw(r::T2, b.localOffset(0), r::Sp);     // reload index
        b.add(r::V0, r::V0, r::T2);
        b.srl(r::V0, r::V0, 3);
        b.fnReturn();
        b.endFunction();
    }

    // Layer 4: word touch_field(obj /*a0*/, i /*a1*/): hash then store
    b.beginFunction("touch_field", 2, {r::S0, r::S1});
    {
        b.move(r::S0, r::A0);
        b.move(r::S1, r::A1);
        b.jal("field_hash");
        b.sw(r::V0, b.localOffset(0), r::Sp);     // spill hash
        b.sll(r::T0, r::S1, 2);
        b.add(r::T0, r::S0, r::T0);
        b.lw(r::T1, b.localOffset(0), r::Sp);     // reload hash
        b.sw(r::T1, 0, r::T0);                    // update field (heap)
        b.lw(r::T3, 4, r::T0);                    // neighbour (heap)
        b.add(r::T3, r::T3, r::T1);
        b.sw(r::T3, 4, r::T0);                    // propagate (heap)
        b.move(r::V0, r::T1);
        b.fnReturn();
        b.endFunction();
    }

    // Layer 3: word validate(obj /*a0*/, key /*a1*/)
    b.beginFunction("validate", 2, {r::S0, r::S1, r::S2});
    {
        Label ok = b.label();
        b.move(r::S0, r::A0);
        b.move(r::S1, r::A1);
        b.lw(r::T0, 0, r::S0);                    // header word (heap)
        b.bne(r::T0, r::Zero, ok);
        b.li(r::T1, 0x7fff);
        b.sw(r::T1, 0, r::S0);                    // lazily initialise
        b.bind(ok);
        // Consult the type schema (data) for this key.
        b.andi(r::T2, r::S1, 63);
        b.sll(r::T2, r::T2, 2);
        b.la(r::T3, "schema");
        b.add(r::T3, r::T3, r::T2);
        b.lw(r::S2, 0, r::T3);                    // schema word (data)
        b.andi(r::A1, r::S1, 13);
        b.addi(r::A1, r::A1, 1);                  // field 1..14
        b.move(r::A0, r::S0);
        b.jal("touch_field");
        b.add(r::V0, r::V0, r::S1);
        b.add(r::V0, r::V0, r::S2);
        b.fnReturn();
        b.endFunction();
    }

    // Layer 2: word obj_update(index /*a0*/, key /*a1*/)
    b.beginFunction("obj_update", 2, {r::S0, r::S1, r::S2});
    {
        b.move(r::S0, r::A0);
        b.move(r::S1, r::A1);
        b.la(r::T0, "obj_table");
        b.sll(r::T1, r::S0, 2);
        b.add(r::T0, r::T0, r::T1);
        b.lw(r::S2, 0, r::T0);                    // object ptr (data)
        b.move(r::A0, r::S2);
        b.move(r::A1, r::S1);
        b.jal("validate");
        b.sw(r::V0, b.localOffset(0), r::Sp);     // spill result
        b.lwGlobal(r::T2, "op_count");
        b.addi(r::T2, r::T2, 1);
        b.swGlobal(r::T2, "op_count");
        b.lw(r::V0, b.localOffset(0), r::Sp);     // reload result
        b.fnReturn();
        b.endFunction();
    }

    // Layer 1: word transaction(seed /*a0*/) — four object updates
    b.beginFunction("transaction", 2, {r::S0, r::S1, r::S2, r::S3});
    {
        b.move(r::S0, r::A0);
        b.li(r::S1, 4);                           // ops per transaction
        b.li(r::S2, 0);                           // accumulator
        Label loop = b.label();
        Label done = b.label();
        b.bind(loop);
        b.blez(r::S1, done);
        b.andi(r::A0, r::S0, NumObjects - 1);
        b.move(r::A1, r::S0);
        b.jal("obj_update");
        b.add(r::S2, r::S2, r::V0);
        b.li(r::T0, 31);
        b.mul(r::S0, r::S0, r::T0);
        b.addi(r::S0, r::S0, 17);
        b.addi(r::S1, r::S1, -1);
        b.j(loop);
        b.bind(done);
        b.move(r::V0, r::S2);
        b.fnReturn();
        b.endFunction();
    }

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1, r::S2});
    {
        // Seed the schema table.
        b.la(r::T0, "schema");
        b.li(r::T1, 64);
        b.li(r::T2, 3);
        Label sseed = b.label();
        b.bind(sseed);
        b.sw(r::T2, 0, r::T0);
        b.addi(r::T2, r::T2, 5);
        b.addi(r::T0, r::T0, 4);
        b.addi(r::T1, r::T1, -1);
        b.bgtz(r::T1, sseed);

        // Allocate the object store.
        b.li(r::S0, NumObjects);
        b.la(r::S1, "obj_table");
        Label alloc = b.label();
        b.bind(alloc);
        b.li(r::A0, ObjectWords * 4);
        b.li(r::V0, 13);                          // malloc
        b.syscall();
        b.sw(r::V0, 0, r::S1);                    // table entry (data)
        b.addi(r::S1, r::S1, 4);
        b.addi(r::S0, r::S0, -1);
        b.bgtz(r::S0, alloc);

        b.li(r::S0, static_cast<std::int32_t>(5000 * scale));
        b.li(r::S2, 0);
        Label txn = b.label();
        Label done = b.label();
        b.bind(txn);
        b.blez(r::S0, done);
        b.move(r::A0, r::S0);
        b.jal("transaction");
        b.add(r::S2, r::S2, r::V0);
        b.addi(r::S0, r::S0, -1);
        b.j(txn);
        b.bind(done);
        b.move(r::A0, r::S2);
        b.li(r::V0, 1);                           // print checksum
        b.syscall();
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    return b.finish();
}

} // namespace arl::workloads
