/**
 * @file
 * 124.m88ksim substitute: an instruction-set interpreter — the
 * simulated CPU's registers live in the data segment, its memory on
 * the heap, and dispatch goes through a function-pointer table.
 *
 * Character reproduced (paper Table 2 / Fig 2): a balanced D/H/S mix
 * with *bursty heap* accesses (guest loads/stores cluster), and —
 * distinctive for m88ksim and perl in the paper — a visible
 * population of multi-region static instructions: the write_result()
 * helper receives pointers both to guest registers (data) and to a
 * stack-resident pipeline latch, so its store is a D/S instruction
 * straight out of the paper's Figure 1.
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{
constexpr unsigned GuestMemWords = 16384;
constexpr unsigned GuestProgWords = 4096;
} // namespace

std::shared_ptr<vm::Program>
buildM88ksimLike(unsigned scale)
{
    ProgramBuilder b("m88ksim_like");

    b.globalArray("guest_regs", 32);
    b.globalWord("guest_mem_ptr", 0);     // heap base, set at init
    b.globalWord("guest_pc", 0);
    b.globalWord("retired", 0);
    b.globalArray("handlers", 4);         // function-pointer table
    b.globalArray("prefetch_buf", 16);    // "icache" refill buffer

    b.emitStartStub("main");

    // ---- void write_result(word *dst /*a0*/, word val /*a1*/) ----
    // The paper's *parm1: dst is &guest_regs[i] (data) from the ALU
    // handler but a stack latch from the dispatch loop.
    b.beginLeaf("write_result");
    {
        b.sw(r::A1, 0, r::A0);            // multi-region store (D/S)
        b.lw(r::T0, 0, r::A0);            // read-back (D/S load)
        b.add(r::V0, r::T0, r::A1);
        b.fnReturn();
        b.endFunction();
    }

    // ---- handler: word h_alu(inst /*a0*/) ----
    b.beginFunction("h_alu", 0);
    {
        b.srl(r::T0, r::A0, 8);
        b.andi(r::T0, r::T0, 31);         // rs
        b.sll(r::T0, r::T0, 2);
        b.la(r::T1, "guest_regs");
        b.add(r::T2, r::T1, r::T0);
        b.lw(r::T3, 0, r::T2);            // guest rs (data)
        b.andi(r::T4, r::A0, 255);        // imm8
        b.add(r::T3, r::T3, r::T4);
        b.srl(r::T5, r::A0, 16);
        b.andi(r::T5, r::T5, 31);         // rd
        b.sll(r::T5, r::T5, 2);
        b.add(r::A0, r::T1, r::T5);       // &guest_regs[rd] (data ptr)
        b.move(r::A1, r::T3);
        b.jal("write_result");
        b.fnReturn();
        b.endFunction();
    }

    // ---- handler: word h_load(inst /*a0*/) ----
    b.beginLeaf("h_load");
    {
        b.move(r::T7, r::A0);
        b.lwGlobal(r::T0, "guest_mem_ptr");
        b.li(r::T1, (GuestMemWords - 1) * 4);
        b.sll(r::T2, r::T7, 2);
        b.and_(r::T2, r::T2, r::T1);      // word-aligned guest addr
        b.add(r::T3, r::T0, r::T2);
        b.lw(r::T4, 0, r::T3);            // guest memory (heap)
        b.srl(r::T5, r::T7, 16);
        b.andi(r::T5, r::T5, 31);
        b.sll(r::T5, r::T5, 2);
        b.la(r::T6, "guest_regs");
        b.add(r::T6, r::T6, r::T5);
        b.sw(r::T4, 0, r::T6);            // write guest rd (data)
        b.move(r::V0, r::T4);
        b.fnReturn();
        b.endFunction();
    }

    // ---- handler: word h_store(inst /*a0*/) ----
    b.beginLeaf("h_store");
    {
        b.move(r::T7, r::A0);
        b.srl(r::T0, r::T7, 8);
        b.andi(r::T0, r::T0, 31);
        b.sll(r::T0, r::T0, 2);
        b.la(r::T1, "guest_regs");
        b.add(r::T1, r::T1, r::T0);
        b.lw(r::T2, 0, r::T1);            // guest rs (data)
        b.lwGlobal(r::T3, "guest_mem_ptr");
        b.li(r::T4, (GuestMemWords - 1) * 4);
        b.sll(r::T5, r::T7, 2);
        b.and_(r::T5, r::T5, r::T4);
        b.add(r::T6, r::T3, r::T5);
        b.sw(r::T2, 0, r::T6);            // guest memory (heap)
        b.move(r::V0, r::T2);
        b.fnReturn();
        b.endFunction();
    }

    // ---- handler: word h_branch(inst /*a0*/) ----
    b.beginLeaf("h_branch");
    {
        b.lwGlobal(r::T0, "guest_pc");
        b.andi(r::T1, r::A0, GuestProgWords - 1);
        b.add(r::T0, r::T0, r::T1);
        b.swGlobal(r::T0, "guest_pc");
        b.move(r::V0, r::T0);
        b.fnReturn();
        b.endFunction();
    }

    // ---- word simulate(cycles /*a0*/) -> v0 ----
    b.beginFunction("simulate", 4, {r::S0, r::S1, r::S2, r::S3, r::S4});
    {
        b.move(r::S0, r::A0);             // remaining cycles
        b.lwGlobal(r::S1, "guest_mem_ptr");
        b.li(r::S2, 0);                   // local checksum
        b.li(r::S3, 0);                   // fetch cursor
        Label loop = b.label();
        Label done = b.label();
        b.bind(loop);
        b.blez(r::S0, done);
        // Fetch from guest program (heap).
        b.andi(r::T0, r::S3, GuestProgWords - 1);
        b.sll(r::T0, r::T0, 2);
        b.add(r::T1, r::S1, r::T0);
        b.lw(r::S4, 0, r::T1);            // guest inst (heap)
        // Dispatch through the function-pointer table (data).
        b.srl(r::T2, r::S4, 28);
        b.andi(r::T2, r::T2, 3);
        b.sll(r::T2, r::T2, 2);
        b.la(r::T3, "handlers");
        b.add(r::T3, r::T3, r::T2);
        b.lw(r::T4, 0, r::T3);            // handler ptr (data)
        b.move(r::A0, r::S4);
        b.jalr(r::Ra, r::T4);             // indirect call
        b.add(r::S2, r::S2, r::V0);
        // Every 16th instruction, latch into a *stack* slot through
        // the shared helper (making its store multi-region).
        b.andi(r::T5, r::S3, 15);
        Label no_latch = b.label();
        b.bne(r::T5, r::Zero, no_latch);
        b.addi(r::A0, r::Sp, 0);          // &latch (stack ptr!)
        b.move(r::A1, r::S2);
        b.jal("write_result");
        b.bind(no_latch);
        // Every 64th instruction: an "icache refill" burst — 16
        // words streamed from guest memory (heap) into a static
        // buffer.  This is what makes m88ksim's heap accesses
        // strictly bursty in Table 2.
        b.andi(r::T5, r::S3, 63);
        Label no_refill = b.label();
        b.bne(r::T5, r::Zero, no_refill);
        b.la(r::A0, "prefetch_buf");
        b.andi(r::T6, r::S3, GuestMemWords - 64);
        b.sll(r::T6, r::T6, 2);
        b.add(r::A1, r::S1, r::T6);
        b.li(r::A2, 16);
        b.jal("memcpy_w");                // heap -> data burst
        b.bind(no_refill);
        b.lwGlobal(r::T6, "retired");
        b.addi(r::T6, r::T6, 1);
        b.swGlobal(r::T6, "retired");
        b.addi(r::S3, r::S3, 1);
        b.addi(r::S0, r::S0, -1);
        b.j(loop);
        b.bind(done);
        b.move(r::V0, r::S2);
        b.fnReturn();
        b.endFunction();
    }

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1});
    {
        // Allocate and fill guest memory with synthetic instructions.
        b.li(r::A0, GuestMemWords * 4);
        b.li(r::V0, 13);
        b.syscall();
        b.swGlobal(r::V0, "guest_mem_ptr");
        b.move(r::S0, r::V0);
        b.li(r::S1, GuestMemWords);
        b.li(r::T7, 424243);              // register LCG
        Label fill = b.label();
        b.bind(fill);
        emitLcgStep(b, r::T0, r::T7, r::T1);
        b.sll(r::T2, r::T0, 17);          // spread bits into op field
        b.or_(r::T2, r::T2, r::T0);
        b.sw(r::T2, 0, r::S0);            // guest inst (heap)
        b.addi(r::S0, r::S0, 4);
        b.addi(r::S1, r::S1, -1);
        b.bgtz(r::S1, fill);

        // Install the handler table (function pointers in data).
        b.laFunc(r::T0, "h_alu");
        b.swGlobal(r::T0, "handlers");
        b.laFunc(r::T0, "h_load");
        b.la(r::T1, "handlers");
        b.sw(r::T0, 4, r::T1);
        b.laFunc(r::T0, "h_store");
        b.sw(r::T0, 8, r::T1);
        b.laFunc(r::T0, "h_branch");
        b.sw(r::T0, 12, r::T1);

        b.li(r::A0, static_cast<std::int32_t>(120000 * scale));
        b.jal("simulate");
        b.move(r::A0, r::V0);
        b.li(r::V0, 1);
        b.syscall();
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    emitMemcpyWords(b);

    return b.finish();
}

} // namespace arl::workloads
