/**
 * @file
 * Shared code-emission helpers for the synthetic SPEC95-substitute
 * workloads.
 *
 * Each workload is a standalone guest program authored against
 * ProgramBuilder.  These helpers emit the little "libc" routines a
 * statically linked 1990s binary would carry — and, importantly for
 * the paper, the *cross-region* utility routines (memcpy/sum over a
 * caller-supplied pointer) whose loads/stores can touch data, heap,
 * and stack depending on the call site: exactly the `*parm1` pattern
 * of the paper's Figure 1 that produces multi-region instructions
 * and exercises the caller-id (CID) context.
 */

#ifndef ARL_WORKLOADS_UTIL_HH
#define ARL_WORKLOADS_UTIL_HH

#include "builder/program_builder.hh"

namespace arl::workloads
{

/**
 * Emit one step of the classic LCG (state = state*1103515245+12345)
 * leaving a 15-bit pseudo-random value in @p rd.  @p rstate is both
 * input and output; @p rtmp is clobbered.
 */
void emitLcgStep(builder::ProgramBuilder &b, RegIndex rd, RegIndex rstate,
                 RegIndex rtmp);

/**
 * Define `memset_w(ptr, words, value)`: word-fill through the $a0
 * pointer (rule-4 addressing; region depends on the call site).
 */
void emitMemsetWords(builder::ProgramBuilder &b);

/**
 * Define `memcpy_w(dst, src, words)`: word copy through two pointer
 * arguments.  Call sites across regions turn its lw/sw into the
 * multi-region class of Fig 2.
 */
void emitMemcpyWords(builder::ProgramBuilder &b);

/**
 * Define `sum_w(ptr, words) -> v0`: word-sum through a pointer
 * argument — the archetypal `*parm1` multi-region instruction.
 */
void emitSumWords(builder::ProgramBuilder &b);

/**
 * Define `lcg_next() -> v0`: global-state LCG returning a 15-bit
 * value; state lives in the data segment (named "__lcg_state"),
 * accessed $gp-relative.
 */
void emitLcgGlobal(builder::ProgramBuilder &b);

} // namespace arl::workloads

#endif // ARL_WORKLOADS_UTIL_HH
