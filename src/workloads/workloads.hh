/**
 * @file
 * Registry of the twelve SPEC95-substitute workloads.
 *
 * SPEC95 binaries and inputs are proprietary, so the reproduction
 * substitutes one synthetic program per benchmark, engineered to
 * match the published per-program region behaviour (see DESIGN.md §3
 * for the mapping table and EXPERIMENTS.md for paper-vs-measured).
 * Every workload is deterministic: same scale => bit-identical
 * execution.
 *
 * `scale` multiplies the main iteration counts; scale 1 targets
 * roughly 1–5 M dynamic instructions per program (the paper ran
 * 220–684 M on real SPEC inputs; we document this reduction in
 * DESIGN.md — region behaviour is phase-stable, so shorter runs
 * preserve the distributions).
 */

#ifndef ARL_WORKLOADS_WORKLOADS_HH
#define ARL_WORKLOADS_WORKLOADS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "vm/program.hh"

namespace arl::workloads
{

/** Descriptor of one substitute workload. */
struct WorkloadInfo
{
    std::string name;          ///< e.g. "compress_like"
    std::string paperAnalog;   ///< e.g. "129.compress"
    bool floatingPoint;        ///< FP program (paper's lower group)
    /**
     * Instructions covering the program's initialisation phase
     * (buffer filling, allocation); timing studies fast-forward past
     * this point so the measured window is the steady-state kernel.
     */
    InstCount warmupInsts;
    /** Build the program at the given scale (>=1). */
    std::function<std::shared_ptr<vm::Program>(unsigned scale)> build;
};

/** All twelve workloads, paper (Table 1) order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Look up by name; fatal when unknown. */
const WorkloadInfo &workloadByName(const std::string &name);

/** Build one workload by name. */
std::shared_ptr<vm::Program> buildWorkload(const std::string &name,
                                           unsigned scale = 1);

// Individual builders (exposed for targeted tests).
std::shared_ptr<vm::Program> buildGoLike(unsigned scale);
std::shared_ptr<vm::Program> buildM88ksimLike(unsigned scale);
std::shared_ptr<vm::Program> buildGccLike(unsigned scale);
std::shared_ptr<vm::Program> buildCompressLike(unsigned scale);
std::shared_ptr<vm::Program> buildLiLike(unsigned scale);
std::shared_ptr<vm::Program> buildIjpegLike(unsigned scale);
std::shared_ptr<vm::Program> buildPerlLike(unsigned scale);
std::shared_ptr<vm::Program> buildVortexLike(unsigned scale);
std::shared_ptr<vm::Program> buildTomcatvLike(unsigned scale);
std::shared_ptr<vm::Program> buildSwimLike(unsigned scale);
std::shared_ptr<vm::Program> buildSu2corLike(unsigned scale);
std::shared_ptr<vm::Program> buildMgridLike(unsigned scale);

} // namespace arl::workloads

#endif // ARL_WORKLOADS_WORKLOADS_HH
