#include "workloads/workloads.hh"

#include "common/logging.hh"

namespace arl::workloads
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> registry = {
        {"go_like", "099.go", false, 10000, buildGoLike},
        {"m88ksim_like", "124.m88ksim", false, 250000, buildM88ksimLike},
        {"gcc_like", "126.gcc", false, 40000, buildGccLike},
        {"compress_like", "129.compress", false, 700000,
         buildCompressLike},
        {"li_like", "130.li", false, 5000, buildLiLike},
        {"ijpeg_like", "132.ijpeg", false, 80000, buildIjpegLike},
        {"perl_like", "134.perl", false, 5000, buildPerlLike},
        {"vortex_like", "147.vortex", false, 10000, buildVortexLike},
        {"tomcatv_like", "101.tomcatv", true, 60000, buildTomcatvLike},
        {"swim_like", "102.swim", true, 110000, buildSwimLike},
        {"su2cor_like", "103.su2cor", true, 210000, buildSu2corLike},
        {"mgrid_like", "107.mgrid", true, 110000, buildMgridLike},
    };
    return registry;
}

const WorkloadInfo &
workloadByName(const std::string &name)
{
    for (const WorkloadInfo &info : allWorkloads()) {
        if (info.name == name)
            return info;
    }
    fatal("unknown workload '%s'", name.c_str());
}

std::shared_ptr<vm::Program>
buildWorkload(const std::string &name, unsigned scale)
{
    return workloadByName(name).build(scale ? scale : 1);
}

} // namespace arl::workloads
