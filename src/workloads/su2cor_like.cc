/**
 * @file
 * 103.su2cor substitute: lattice sweeps with inner-product kernels
 * over static FP arrays, plus a small heap workspace.
 *
 * Character reproduced (paper Table 2): strongly data-dominant
 * (7.38 per 32) with a *small but non-zero* heap component (0.44 —
 * a malloc'd correlation workspace touched once per sweep) and a
 * bursty stack (σ 4.53 > mean 2.98 at window 32: frames cluster at
 * sweep boundaries).
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{
constexpr unsigned LatticeWords = 8192;
constexpr unsigned CorrWords = 128;
} // namespace

std::shared_ptr<vm::Program>
buildSu2corLike(unsigned scale)
{
    ProgramBuilder b("su2cor_like");

    b.globalWord("corr_ptr", 0);
    b.globalWord("sweeps", 0);
    b.globalArray("LAT_A", LatticeWords);
    b.globalArray("LAT_B", LatticeWords);

    b.emitStartStub("main");

    // ---- word dot_block(a /*a0*/, b /*a1*/, n /*a2*/) -> v0 ----
    // Pointer-based FP inner product (rule-4 accesses, data region).
    b.beginFunction("dot_block", 2, {r::S0});
    {
        // Two independent partial-sum chains (unrolled inner
        // product) plus an off-critical-path spill pair per
        // iteration for the stack-traffic realism of compiled FP
        // code.
        b.fli(4, 0.0f);                       // partial sum, lane A
        b.fmov(9, 4);                         // partial sum, lane B
        b.fmov(11, 4);                        // spill-check chain
        Label loop = b.label();
        Label done = b.label();
        b.bind(loop);
        b.blez(r::A2, done);
        b.lwc1(0, 0, r::A0);                  // lattice A (data)
        b.lwc1(1, 0, r::A1);                  // lattice B (data)
        b.fmul(0, 0, 1);
        b.fadd(4, 4, 0);
        b.lwc1(2, 4, r::A0);
        b.lwc1(3, 4, r::A1);
        b.fmul(2, 2, 3);
        b.fadd(9, 9, 2);
        b.swc1(0, b.localOffset(0), r::Sp);   // spill product (stack)
        b.lwc1(10, b.localOffset(0), r::Sp);  // reload (stack)
        b.fadd(11, 11, 10);
        b.addi(r::A0, r::A0, 8);
        b.addi(r::A1, r::A1, 8);
        b.addi(r::A2, r::A2, -2);
        b.j(loop);
        b.bind(done);
        b.fadd(4, 4, 9);
        b.fadd(4, 4, 11);
        b.swc1(4, b.localOffset(1), r::Sp);   // FP spill (stack)
        b.lwc1(5, b.localOffset(1), r::Sp);
        b.cvtws(5, 5);
        b.mfc1(r::V0, 5);
        b.fnReturn();
        b.endFunction();
    }

    // ---- word update_block(a /*a0*/, n /*a1*/, scale_bits /*a2*/) ----
    b.beginFunction("update_block", 0);
    {
        b.mtc1(6, r::A2);
        b.cvtsw(6, 6);
        b.fli(7, 1.0f / 1024.0f);
        b.fmul(6, 6, 7);
        b.fli(8, 0.96875f);                   // damping
        Label loop = b.label();
        Label done = b.label();
        b.bind(loop);
        b.blez(r::A1, done);
        b.lwc1(0, 0, r::A0);                  // (data)
        b.fmul(0, 0, 8);
        b.fadd(0, 0, 6);
        b.swc1(0, 0, r::A0);                  // (data)
        b.addi(r::A0, r::A0, 4);
        b.addi(r::A1, r::A1, -1);
        b.j(loop);
        b.bind(done);
        b.fnReturn();
        b.endFunction();
    }

    // ---- word sweep(seed /*a0*/) -> v0 ----
    b.beginFunction("sweep", 2, {r::S0, r::S1, r::S2});
    {
        b.move(r::S0, r::A0);
        // Update both lattices block by block (data streams).
        b.la(r::A0, "LAT_A");
        b.li(r::A1, LatticeWords);
        b.andi(r::A2, r::S0, 127);
        b.jal("update_block");
        b.la(r::A0, "LAT_B");
        b.li(r::A1, LatticeWords);
        b.andi(r::A2, r::S0, 63);
        b.jal("update_block");
        // Correlate in 128 chunks of 64 words each: frequent small
        // calls cluster frame traffic (the bursty stack of Table 2).
        b.li(r::S1, 128);
        b.li(r::S2, 0);
        Label corr = b.label();
        Label corr_done = b.label();
        b.bind(corr);
        b.blez(r::S1, corr_done);
        b.li(r::T0, (LatticeWords / 128) * 4);
        b.addi(r::T1, r::S1, -1);
        b.mul(r::T2, r::T1, r::T0);
        b.la(r::A0, "LAT_A");
        b.add(r::A0, r::A0, r::T2);
        b.la(r::A1, "LAT_B");
        b.add(r::A1, r::A1, r::T2);
        b.li(r::A2, LatticeWords / 128);
        b.jal("dot_block");
        // Stash this chunk's correlation in the heap workspace and
        // fold the previous chunk's value back in.
        b.lwGlobal(r::T3, "corr_ptr");
        b.addi(r::T4, r::S1, -1);
        b.andi(r::T4, r::T4, CorrWords - 1);
        b.sll(r::T4, r::T4, 2);
        b.add(r::T3, r::T3, r::T4);
        b.lw(r::T5, 0, r::T3);                // previous (heap)
        b.sw(r::V0, 0, r::T3);                // workspace (heap)
        b.add(r::S2, r::S2, r::V0);
        b.add(r::S2, r::S2, r::T5);
        b.addi(r::S1, r::S1, -1);
        b.j(corr);
        b.bind(corr_done);
        b.lwGlobal(r::T5, "sweeps");
        b.addi(r::T5, r::T5, 1);
        b.swGlobal(r::T5, "sweeps");
        b.move(r::V0, r::S2);
        b.fnReturn();
        b.endFunction();
    }

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1});
    {
        b.li(r::A0, CorrWords * 4);
        b.li(r::V0, 13);
        b.syscall();
        b.swGlobal(r::V0, "corr_ptr");

        // Fill the lattices.
        b.la(r::T0, "LAT_A");
        b.la(r::T1, "LAT_B");
        b.li(r::T2, LatticeWords);
        b.li(r::T7, 90210);
        b.fli(8, 1.0f / 300.0f);
        Label fill = b.label();
        b.bind(fill);
        emitLcgStep(b, r::T3, r::T7, r::T4);
        b.andi(r::T3, r::T3, 255);
        b.mtc1(9, r::T3);
        b.cvtsw(9, 9);
        b.fmul(9, 9, 8);
        b.swc1(9, 0, r::T0);
        b.swc1(9, 0, r::T1);
        b.addi(r::T0, r::T0, 4);
        b.addi(r::T1, r::T1, 4);
        b.addi(r::T2, r::T2, -1);
        b.bgtz(r::T2, fill);

        b.li(r::S0, static_cast<std::int32_t>(40 * scale));
        b.li(r::S1, 0);
        Label steps = b.label();
        Label done = b.label();
        b.bind(steps);
        b.blez(r::S0, done);
        b.move(r::A0, r::S0);
        b.jal("sweep");
        b.add(r::S1, r::S1, r::V0);
        b.addi(r::S0, r::S0, -1);
        b.j(steps);
        b.bind(done);
        b.move(r::A0, r::S1);
        b.li(r::V0, 1);
        b.syscall();
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    return b.finish();
}

} // namespace arl::workloads
