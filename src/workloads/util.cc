#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

void
emitLcgStep(ProgramBuilder &b, RegIndex rd, RegIndex rstate, RegIndex rtmp)
{
    b.li(rtmp, 1103515245);
    b.mul(rstate, rstate, rtmp);
    b.addi(rstate, rstate, 12345);
    b.srl(rd, rstate, 16);
    b.andi(rd, rd, 0x7fff);
}

void
emitMemsetWords(ProgramBuilder &b)
{
    // void memset_w(word *ptr /*a0*/, int words /*a1*/, word v /*a2*/)
    b.beginLeaf("memset_w");
    Label loop = b.label();
    Label done = b.label();
    b.bind(loop);
    b.blez(r::A1, done);
    b.sw(r::A2, 0, r::A0);          // rule-4 store through pointer arg
    b.addi(r::A0, r::A0, 4);
    b.addi(r::A1, r::A1, -1);
    b.j(loop);
    b.bind(done);
    b.fnReturn();
    b.endFunction();
}

void
emitMemcpyWords(ProgramBuilder &b)
{
    // void memcpy_w(word *dst /*a0*/, word *src /*a1*/, int words /*a2*/)
    b.beginLeaf("memcpy_w");
    Label loop = b.label();
    Label done = b.label();
    b.bind(loop);
    b.blez(r::A2, done);
    b.lw(r::T0, 0, r::A1);          // rule-4 load, region = call site's
    b.sw(r::T0, 0, r::A0);          // rule-4 store
    b.addi(r::A0, r::A0, 4);
    b.addi(r::A1, r::A1, 4);
    b.addi(r::A2, r::A2, -1);
    b.j(loop);
    b.bind(done);
    b.fnReturn();
    b.endFunction();
}

void
emitSumWords(ProgramBuilder &b)
{
    // word sum_w(word *ptr /*a0*/, int words /*a1*/) -> v0
    b.beginLeaf("sum_w");
    Label loop = b.label();
    Label done = b.label();
    b.li(r::V0, 0);
    b.bind(loop);
    b.blez(r::A1, done);
    b.lw(r::T0, 0, r::A0);          // the paper's *parm1 pattern
    b.add(r::V0, r::V0, r::T0);
    b.addi(r::A0, r::A0, 4);
    b.addi(r::A1, r::A1, -1);
    b.j(loop);
    b.bind(done);
    b.fnReturn();
    b.endFunction();
}

void
emitLcgGlobal(ProgramBuilder &b)
{
    b.globalWord("__lcg_state", 12345);
    // word lcg_next() -> v0
    b.beginLeaf("lcg_next");
    b.lwGlobal(r::T0, "__lcg_state");   // $gp-relative (rule 3)
    b.li(r::T1, 1103515245);
    b.mul(r::T0, r::T0, r::T1);
    b.addi(r::T0, r::T0, 12345);
    b.swGlobal(r::T0, "__lcg_state");
    b.srl(r::V0, r::T0, 16);
    b.andi(r::V0, r::V0, 0x7fff);
    b.fnReturn();
    b.endFunction();
}

} // namespace arl::workloads
