/**
 * @file
 * 126.gcc substitute: builds expression trees on the heap, folds them
 * recursively, and periodically rescans global tables.
 *
 * Character reproduced (paper Table 2): stack > data > heap, with
 * *bursty data* accesses (gcc is the only integer code besides ijpeg
 * whose data accesses are strictly bursty — here the burstiness comes
 * from the periodic table-rehash phase).  gcc also has by far the
 * most static memory instructions; this substitute deliberately uses
 * many distinct functions and duplicated loop bodies so its static
 * footprint is the largest of our integer suite (Table 3 pressure).
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{
constexpr unsigned TableWords = 2048;

/**
 * Emit one of several near-identical fold helpers.  Real gcc has
 * hundreds of similar tree-walking routines; stamping a few variants
 * multiplies the *static* instruction count without changing the
 * dynamic behaviour much.
 */
void
emitFoldVariant(ProgramBuilder &b, const std::string &name, int op_bias,
                bool write_back)
{
    // word fold_N(node* /*a0*/) -> v0 ; node = {op, left, right, val}
    b.beginFunction(name, 2, {r::S0, r::S1, r::S2});
    Label leaf = b.label();
    Label have_right = b.label();
    b.move(r::S0, r::A0);
    b.li(r::S1, 0);                        // folded left
    b.li(r::S2, 0);                        // folded right
    b.lw(r::T0, 4, r::S0);                 // left child (heap)
    b.beq(r::T0, r::Zero, leaf);

    b.move(r::A0, r::T0);
    b.jal(name);                           // recurse left
    b.move(r::S1, r::V0);
    b.lw(r::T1, 8, r::S0);                 // right child (heap)
    b.bne(r::T1, r::Zero, have_right);
    b.li(r::S2, 0);
    b.j(leaf);                             // (reuses leaf as join)
    b.bind(have_right);
    b.move(r::A0, r::T1);
    b.jal(name);                           // recurse right
    b.move(r::S2, r::V0);

    b.bind(leaf);
    b.lw(r::T2, 0, r::S0);                 // op (heap)
    b.lw(r::T3, 12, r::S0);                // val (heap)
    b.andi(r::T4, r::T2, TableWords - 1);
    b.sll(r::T4, r::T4, 2);
    b.la(r::T5, "op_costs");
    b.add(r::T5, r::T5, r::T4);
    b.lw(r::T6, 0, r::T5);                 // cost table (data)
    // Second attribute lookup (gcc consults several tables per node).
    b.srl(r::T7, r::T2, 3);
    b.andi(r::T7, r::T7, TableWords - 1);
    b.sll(r::T7, r::T7, 2);
    b.la(r::T8, "mode_table");
    b.add(r::T8, r::T8, r::T7);
    b.lw(r::T8, 0, r::T8);                 // mode table (data)
    b.add(r::V0, r::T3, r::T6);
    b.add(r::V0, r::V0, r::T8);
    b.add(r::V0, r::V0, r::S1);
    b.add(r::V0, r::V0, r::S2);
    b.addi(r::V0, r::V0, op_bias);
    if (write_back)
        b.sw(r::V0, 12, r::S0);            // fold result back (heap)
    b.fnReturn();
    b.endFunction();
}

} // namespace

std::shared_ptr<vm::Program>
buildGccLike(unsigned scale)
{
    ProgramBuilder b("gcc_like");

    b.globalWord("node_count", 0);
    b.globalWord("rehash_count", 0);
    b.globalArray("op_costs", TableWords);
    b.globalArray("mode_table", TableWords);
    b.globalArray("sym_hash", TableWords);
    b.globalArray("sym_backup", TableWords);

    b.emitStartStub("main");

    // ---- node *build_expr(depth /*a0*/, seed /*a1*/) -> v0 ----
    b.beginFunction("build_expr", 2, {r::S0, r::S1, r::S2, r::S3});
    {
        Label leaf = b.label();
        Label done = b.label();
        b.move(r::S0, r::A0);
        b.move(r::S1, r::A1);
        b.li(r::A0, 16);
        b.li(r::V0, 13);                   // malloc node
        b.syscall();
        b.move(r::S2, r::V0);
        b.sw(r::S1, 0, r::S2);             // op = seed (heap)
        b.sw(r::S1, 12, r::S2);            // val = seed (heap)
        b.lwGlobal(r::T0, "node_count");
        b.addi(r::T0, r::T0, 1);
        b.swGlobal(r::T0, "node_count");
        b.blez(r::S0, leaf);

        b.addi(r::A0, r::S0, -1);
        b.li(r::T1, 7);
        b.mul(r::A1, r::S1, r::T1);
        b.addi(r::A1, r::A1, 3);
        b.jal("build_expr");
        b.sw(r::V0, 4, r::S2);             // left (heap)
        b.addi(r::A0, r::S0, -1);
        b.li(r::T2, 13);
        b.mul(r::A1, r::S1, r::T2);
        b.addi(r::A1, r::A1, 5);
        b.jal("build_expr");
        b.sw(r::V0, 8, r::S2);             // right (heap)
        b.j(done);

        b.bind(leaf);
        b.sw(r::Zero, 4, r::S2);
        b.sw(r::Zero, 8, r::S2);
        b.bind(done);
        b.move(r::V0, r::S2);
        b.fnReturn();
        b.endFunction();
    }

    // ---- void free_expr(node* /*a0*/) ----
    b.beginFunction("free_expr", 1, {r::S0});
    {
        Label no_left = b.label();
        Label no_right = b.label();
        b.move(r::S0, r::A0);
        b.lw(r::T0, 4, r::S0);             // left (heap)
        b.beq(r::T0, r::Zero, no_left);
        b.move(r::A0, r::T0);
        b.jal("free_expr");
        b.bind(no_left);
        b.lw(r::T1, 8, r::S0);             // right (heap)
        b.beq(r::T1, r::Zero, no_right);
        b.move(r::A0, r::T1);
        b.jal("free_expr");
        b.bind(no_right);
        b.move(r::A0, r::S0);
        b.li(r::V0, 14);                   // free
        b.syscall();
        b.fnReturn();
        b.endFunction();
    }

    // Three near-identical folders (static-footprint realism); only
    // the arithmetic fold writes results back.
    emitFoldVariant(b, "fold_arith", 1, true);
    emitFoldVariant(b, "fold_logic", 2, false);
    emitFoldVariant(b, "fold_addr", 3, false);

    // ---- void rehash(): scan/permute the global symbol table ----
    // This is the bursty-data phase (sym_hash -> sym_backup -> back).
    b.beginFunction("rehash", 0);
    {
        b.la(r::A0, "sym_backup");
        b.la(r::A1, "sym_hash");
        b.li(r::A2, TableWords);
        b.jal("memcpy_w");                 // data->data burst
        b.la(r::T0, "sym_hash");
        b.la(r::T1, "sym_backup");
        b.li(r::T2, TableWords);
        Label mix = b.label();
        b.bind(mix);
        b.lw(r::T3, 0, r::T1);             // backup (data)
        b.li(r::T4, 29);
        b.mul(r::T3, r::T3, r::T4);
        b.addi(r::T3, r::T3, 1);
        b.sw(r::T3, 0, r::T0);             // rehash (data)
        b.addi(r::T0, r::T0, 4);
        b.addi(r::T1, r::T1, 4);
        b.addi(r::T2, r::T2, -1);
        b.bgtz(r::T2, mix);
        b.lwGlobal(r::T5, "rehash_count");
        b.addi(r::T5, r::T5, 1);
        b.swGlobal(r::T5, "rehash_count");
        b.fnReturn();
        b.endFunction();
    }

    // ---- int main() ----
    b.beginFunction("main", 2, {r::S0, r::S1, r::S2, r::S3});
    {
        // Seed the attribute tables.
        b.la(r::T0, "op_costs");
        b.la(r::T3, "mode_table");
        b.li(r::T1, TableWords);
        b.li(r::T2, 5);
        Label seed = b.label();
        b.bind(seed);
        b.sw(r::T2, 0, r::T0);
        b.sw(r::T2, 0, r::T3);
        b.addi(r::T2, r::T2, 11);
        b.andi(r::T2, r::T2, 1023);
        b.addi(r::T0, r::T0, 4);
        b.addi(r::T3, r::T3, 4);
        b.addi(r::T1, r::T1, -1);
        b.bgtz(r::T1, seed);

        b.li(r::S0, static_cast<std::int32_t>(60 * scale));
        b.li(r::S1, 0);                    // checksum
        Label loop = b.label();
        Label done = b.label();
        b.bind(loop);
        b.blez(r::S0, done);
        // Build a depth-7 expression, fold it three ways, free it.
        b.li(r::A0, 7);
        b.move(r::A1, r::S0);
        b.jal("build_expr");
        b.move(r::S2, r::V0);
        b.move(r::A0, r::S2);
        b.jal("fold_arith");
        b.add(r::S1, r::S1, r::V0);
        b.move(r::A0, r::S2);
        b.jal("fold_logic");
        b.add(r::S1, r::S1, r::V0);
        b.move(r::A0, r::S2);
        b.jal("fold_addr");
        b.add(r::S1, r::S1, r::V0);
        b.move(r::A0, r::S2);
        b.jal("free_expr");
        // Every 4th iteration: the bursty table phase.
        b.andi(r::T0, r::S0, 3);
        Label no_rehash = b.label();
        b.bne(r::T0, r::Zero, no_rehash);
        b.jal("rehash");
        b.bind(no_rehash);
        b.addi(r::S0, r::S0, -1);
        b.j(loop);
        b.bind(done);
        b.lwGlobal(r::T0, "node_count");
        b.add(r::A0, r::S1, r::T0);
        b.li(r::V0, 1);
        b.syscall();
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    emitMemcpyWords(b);

    return b.finish();
}

} // namespace arl::workloads
