/**
 * @file
 * 101.tomcatv substitute: 2-D FP mesh relaxation with heavy FP
 * register spilling and a small heap scratch row.
 *
 * Character reproduced (paper Table 2 / Fig 2): uniquely for an FP
 * code, *stack-dominant* (5.97 stack vs 3.96 data per 32, both very
 * bursty) — compiled tomcatv spills many FP temporaries per mesh
 * point — with a small heap component (0.63).  tomcatv is also
 * called out in the paper as having more multi-region instructions:
 * the shared row_reduce() helper here is called with data, heap, and
 * stack pointers in turn.
 */

#include "workloads/workloads.hh"

#include "builder/program_builder.hh"
#include "workloads/util.hh"

namespace arl::workloads
{

namespace r = isa::reg;
using builder::Label;
using builder::ProgramBuilder;

namespace
{
constexpr unsigned Dim = 48;
constexpr unsigned GridWords = Dim * Dim;
} // namespace

std::shared_ptr<vm::Program>
buildTomcatvLike(unsigned scale)
{
    ProgramBuilder b("tomcatv_like");

    b.globalWord("scratch_ptr", 0);     // heap row buffer
    b.globalWord("iters_done", 0);
    b.globalArray("X", GridWords);
    b.globalArray("Y", GridWords);
    b.globalArray("RX", GridWords);

    b.emitStartStub("main");

    // ---- word row_reduce(fptr /*a0*/, n /*a1*/) -> v0 ----
    // Sums a float row through a pointer: called with &RX[row]
    // (data), the heap scratch row, and a stack-resident residual
    // buffer — a three-region instruction (Fig 1's *parm1).
    b.beginFunction("row_reduce", 0);
    {
        b.fli(4, 0.0f);
        Label loop = b.label();
        Label done = b.label();
        b.bind(loop);
        b.blez(r::A1, done);
        b.lwc1(0, 0, r::A0);                  // D / H / S by call site
        b.fadd(4, 4, 0);
        b.addi(r::A0, r::A0, 4);
        b.addi(r::A1, r::A1, -1);
        b.j(loop);
        b.bind(done);
        b.cvtws(4, 4);
        b.mfc1(r::V0, 4);
        b.fnReturn();
        b.endFunction();
    }

    // ---- word relax_row(row /*a0*/) -> v0 ----
    // Per-point 5-point relaxation with 4 FP spill pairs per point
    // (tomcatv's register pressure), residuals collected both into a
    // stack buffer and the heap scratch row.
    b.beginFunction("relax_row", 20, {r::S0, r::S1, r::S2, r::S3});
    {
        b.move(r::S0, r::A0);                 // row index
        b.li(r::T0, Dim * 4);
        b.mul(r::T1, r::S0, r::T0);
        b.la(r::S1, "X");
        b.add(r::S1, r::S1, r::T1);
        b.addi(r::S1, r::S1, 4);              // &X[row][1]
        b.la(r::S2, "Y");
        b.add(r::S2, r::S2, r::T1);
        b.addi(r::S2, r::S2, 4);
        b.li(r::S3, Dim - 2);                 // interior columns
        b.fli(10, 0.25f);
        Label cols = b.label();
        Label done = b.label();
        b.bind(cols);
        b.blez(r::S3, done);
        b.lwc1(0, -4, r::S1);                 // X west (data)
        b.lwc1(1, 4, r::S1);                  // X east (data)
        b.lwc1(2, -(static_cast<std::int32_t>(Dim) * 4), r::S1);
        b.lwc1(3, static_cast<std::int32_t>(Dim) * 4, r::S1);
        // Spill the four neighbours (stack FP traffic).
        b.swc1(0, b.localOffset(0), r::Sp);
        b.swc1(1, b.localOffset(1), r::Sp);
        b.swc1(2, b.localOffset(2), r::Sp);
        b.swc1(3, b.localOffset(3), r::Sp);
        b.lwc1(5, 0, r::S2);                  // Y center (data)
        b.fadd(0, 0, 1);
        b.fadd(2, 2, 3);
        b.fadd(0, 0, 2);
        b.fmul(0, 0, 10);                     // average
        b.fsub(6, 0, 5);                      // residual
        // Reload two spills and fold them in (more stack traffic).
        b.lwc1(7, b.localOffset(0), r::Sp);
        b.lwc1(8, b.localOffset(2), r::Sp);
        b.fadd(7, 7, 8);
        b.fmul(7, 7, 10);
        b.fadd(0, 0, 7);
        b.fmul(0, 0, 10);
        b.swc1(0, 0, r::S1);                  // X update (data)
        // Residual alternates between the stack buffer (odd columns)
        // and the heap scratch row (even columns): this single swc1
        // is an H/S multi-region instruction — the paper singles out
        // tomcatv as having more such instructions.
        {
            Label to_stack = b.label();
            Label store = b.label();
            b.andi(r::T4, r::S3, 1);
            b.bne(r::T4, r::Zero, to_stack);
            b.lwGlobal(r::T3, "scratch_ptr");
            b.andi(r::T2, r::S3, 31);
            b.sll(r::T2, r::T2, 2);
            b.add(r::T3, r::T3, r::T2);       // heap slot
            b.j(store);
            b.bind(to_stack);
            b.andi(r::T2, r::S3, 11);
            b.addi(r::T2, r::T2, 4);
            b.sll(r::T2, r::T2, 2);
            b.add(r::T3, r::Sp, r::T2);       // stack slot
            b.bind(store);
            b.swc1(6, 0, r::T3);              // residual (H/S)
        }
        b.addi(r::S1, r::S1, 4);
        b.addi(r::S2, r::S2, 4);
        b.addi(r::S3, r::S3, -1);
        b.j(cols);
        b.bind(done);

        // Copy a few residuals into the heap scratch row.
        b.lwGlobal(r::T4, "scratch_ptr");
        b.lwc1(9, b.localOffset(4), r::Sp);   // (stack)
        b.swc1(9, 0, r::T4);                  // (heap)
        b.lwc1(9, b.localOffset(5), r::Sp);
        b.swc1(9, 4, r::T4);
        b.lwc1(9, b.localOffset(6), r::Sp);
        b.swc1(9, 8, r::T4);

        // Reduce: stack residuals, then the heap scratch row.
        b.addi(r::A0, r::Sp, b.localOffset(4));
        b.li(r::A1, 12);
        b.jal("row_reduce");                  // stack call site
        b.move(r::S0, r::V0);
        b.lwGlobal(r::A0, "scratch_ptr");
        b.li(r::A1, 3);
        b.jal("row_reduce");                  // heap call site
        b.add(r::V0, r::V0, r::S0);
        b.fnReturn();
        b.endFunction();
    }

    // ---- int main() ----
    b.beginFunction("main", 1, {r::S0, r::S1, r::S2});
    {
        b.li(r::A0, Dim * 4);
        b.li(r::V0, 13);                      // heap scratch row
        b.syscall();
        b.swGlobal(r::V0, "scratch_ptr");

        // Fill X and Y.
        b.la(r::T0, "X");
        b.la(r::T1, "Y");
        b.li(r::T2, GridWords);
        b.li(r::T7, 1999);
        b.fli(8, 1.0f / 128.0f);
        Label fill = b.label();
        b.bind(fill);
        emitLcgStep(b, r::T3, r::T7, r::T4);
        b.andi(r::T3, r::T3, 255);
        b.mtc1(9, r::T3);
        b.cvtsw(9, 9);
        b.fmul(9, 9, 8);
        b.swc1(9, 0, r::T0);
        b.swc1(9, 0, r::T1);
        b.addi(r::T0, r::T0, 4);
        b.addi(r::T1, r::T1, 4);
        b.addi(r::T2, r::T2, -1);
        b.bgtz(r::T2, fill);

        b.li(r::S0, static_cast<std::int32_t>(14 * scale));  // iters
        b.li(r::S2, 0);
        Label iters = b.label();
        Label iters_done = b.label();
        b.bind(iters);
        b.blez(r::S0, iters_done);
        b.li(r::S1, 1);                        // interior rows 1..Dim-2
        Label rows = b.label();
        Label rows_done = b.label();
        b.bind(rows);
        b.li(r::T0, Dim - 1);
        b.beq(r::S1, r::T0, rows_done);
        b.move(r::A0, r::S1);
        b.jal("relax_row");
        b.add(r::S2, r::S2, r::V0);
        b.addi(r::S1, r::S1, 1);
        b.j(rows);
        b.bind(rows_done);
        // Whole-mesh reduction through the data call site.
        b.la(r::A0, "RX");
        b.li(r::A1, 64);
        b.jal("row_reduce");                  // data call site
        b.add(r::S2, r::S2, r::V0);
        b.lwGlobal(r::T1, "iters_done");
        b.addi(r::T1, r::T1, 1);
        b.swGlobal(r::T1, "iters_done");
        b.addi(r::S0, r::S0, -1);
        b.j(iters);
        b.bind(iters_done);
        b.move(r::A0, r::S2);
        b.li(r::V0, 1);
        b.syscall();
        b.li(r::V0, 0);
        b.fnReturn();
        b.endFunction();
    }

    return b.finish();
}

} // namespace arl::workloads
