/**
 * @file
 * Architectural register file definition and calling conventions of
 * the ARL ISA.
 *
 * The ARL ISA is a 32-bit RISC in the SimpleScalar-PISA / MIPS mould:
 * 32 general-purpose registers and 32 single-precision FP registers.
 * The register *conventions* matter for this paper: the access-region
 * predictor's static rules key on whether a memory instruction's base
 * register is the stack pointer ($sp), frame pointer ($fp), or global
 * pointer ($gp).
 */

#ifndef ARL_ISA_REGISTERS_HH
#define ARL_ISA_REGISTERS_HH

#include <string>

#include "common/types.hh"

namespace arl::isa
{

/** Number of general-purpose registers. */
constexpr unsigned NumGprs = 32;
/** Number of floating-point registers. */
constexpr unsigned NumFprs = 32;

/**
 * Symbolic GPR indices following the MIPS o32 convention the paper's
 * compiler (EGCS for SimpleScalar PISA) used.
 */
namespace reg
{
constexpr RegIndex Zero = 0;  ///< hard-wired zero
constexpr RegIndex At = 1;    ///< assembler temporary
constexpr RegIndex V0 = 2;    ///< return value 0 / syscall number
constexpr RegIndex V1 = 3;    ///< return value 1
constexpr RegIndex A0 = 4;    ///< argument 0
constexpr RegIndex A1 = 5;    ///< argument 1
constexpr RegIndex A2 = 6;    ///< argument 2
constexpr RegIndex A3 = 7;    ///< argument 3
constexpr RegIndex T0 = 8;    ///< caller-saved temporaries T0..T7
constexpr RegIndex T1 = 9;
constexpr RegIndex T2 = 10;
constexpr RegIndex T3 = 11;
constexpr RegIndex T4 = 12;
constexpr RegIndex T5 = 13;
constexpr RegIndex T6 = 14;
constexpr RegIndex T7 = 15;
constexpr RegIndex S0 = 16;   ///< callee-saved S0..S7
constexpr RegIndex S1 = 17;
constexpr RegIndex S2 = 18;
constexpr RegIndex S3 = 19;
constexpr RegIndex S4 = 20;
constexpr RegIndex S5 = 21;
constexpr RegIndex S6 = 22;
constexpr RegIndex S7 = 23;
constexpr RegIndex T8 = 24;
constexpr RegIndex T9 = 25;
constexpr RegIndex K0 = 26;   ///< reserved (unused by arl)
constexpr RegIndex K1 = 27;
constexpr RegIndex Gp = 28;   ///< global pointer (static data base)
constexpr RegIndex Sp = 29;   ///< stack pointer
constexpr RegIndex Fp = 30;   ///< frame pointer
constexpr RegIndex Ra = 31;   ///< return address (link register)
} // namespace reg

/** Canonical name ("$sp", "$t0", ...) of GPR @p index. */
std::string gprName(RegIndex index);

/** Canonical name ("$f5") of FPR @p index. */
std::string fprName(RegIndex index);

/**
 * Parse a GPR name: accepts "$sp"-style symbolic names and "$12" /
 * "r12" numeric names.
 * @return register index, or -1 when the name is not a GPR.
 */
int parseGprName(const std::string &name);

/**
 * Parse an FPR name: accepts "$f0".."$f31" and "f0".."f31".
 * @return register index, or -1 when the name is not an FPR.
 */
int parseFprName(const std::string &name);

} // namespace arl::isa

#endif // ARL_ISA_REGISTERS_HH
