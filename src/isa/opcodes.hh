/**
 * @file
 * Opcode set of the ARL ISA and the static per-opcode property table.
 *
 * Encoding formats (32-bit instruction word, op in bits [31:26]):
 *
 *   R: | op:6 | rd:5 | rs:5 | rt:5 | zero:11 |        three-register ALU
 *   I: | op:6 | rd:5 | rs:5 | imm:16 |               immediate / memory /
 *                                                    branch (rd is the
 *                                                    source for stores
 *                                                    and branches)
 *   J: | op:6 | target:26 |                          j / jal (word target
 *                                                    within the 256 MB
 *                                                    region of PC)
 *
 * Memory instructions use base+displacement addressing exclusively
 * (like SimpleScalar PISA at -O3 in practice): EA = GPR[rs] + imm.
 * "Constant addressing" in the paper's static rule 1 corresponds to
 * rs == $zero.
 */

#ifndef ARL_ISA_OPCODES_HH
#define ARL_ISA_OPCODES_HH

#include <cstdint>
#include <string>

namespace arl::isa
{

/** Every architected operation. Values are the 6-bit encoding. */
enum class Opcode : std::uint8_t
{
    // R-format integer ALU.
    Add = 0,
    Sub,
    Mul,
    Div,      ///< signed divide; result in rd
    Rem,      ///< signed remainder; result in rd
    And,
    Or,
    Xor,
    Nor,
    Sllv,     ///< shift left by register
    Srlv,
    Srav,
    Slt,
    Sltu,

    // I-format integer ALU.
    Addi,
    Andi,
    Ori,
    Xori,
    Slti,
    Sltiu,
    Lui,      ///< rd = imm << 16
    Sll,      ///< shift by 5-bit immediate (in imm field)
    Srl,
    Sra,

    // I-format memory: EA = GPR[rs] + signExtend(imm).
    Lw,
    Lh,
    Lhu,
    Lb,
    Lbu,
    Sw,
    Sh,
    Sb,
    Lwc1,     ///< load word into FPR rd
    Swc1,     ///< store FPR rd

    // Floating point (single precision), R-format on FPRs.
    FaddS,
    FsubS,
    FmulS,
    FdivS,
    FnegS,
    FmovS,
    CvtSW,    ///< FPR rd = float(FPR rs holding int bits)
    CvtWS,    ///< FPR rd = int(FPR rs), truncating
    FeqS,     ///< GPR rd = (FPR rs == FPR rt)
    FltS,     ///< GPR rd = (FPR rs <  FPR rt)
    FleS,     ///< GPR rd = (FPR rs <= FPR rt)
    Mtc1,     ///< FPR rd = GPR rs (bit copy)
    Mfc1,     ///< GPR rd = FPR rs (bit copy)

    // Control transfer.
    Beq,      ///< branch if GPR[rd] == GPR[rs]
    Bne,
    Blez,     ///< branch if GPR[rs] <= 0
    Bgtz,
    Bltz,
    Bgez,
    J,
    Jal,
    Jr,       ///< jump to GPR[rs]
    Jalr,     ///< rd = return address; jump to GPR[rs]

    // System.
    Syscall,
    Nop,      ///< architected no-op (distinct encoding, aids disasm)

    NumOpcodes
};

/** Number of distinct opcodes. */
constexpr unsigned NumOpcodes =
    static_cast<unsigned>(Opcode::NumOpcodes);

/** Encoding format of an opcode. */
enum class InstFormat : std::uint8_t { R, I, J };

/** Functional-unit class used by the timing simulator. */
enum class FuClass : std::uint8_t
{
    IntAlu,    ///< single-cycle integer
    IntMult,   ///< integer multiply/divide unit
    FpAlu,     ///< FP add/compare/convert
    FpMult,    ///< FP multiply/divide unit
    Mem,       ///< load/store (goes through a memory pipeline)
    None       ///< consumes no FU (nop, j, syscall in this model)
};

/** Static properties of one opcode. */
struct OpInfo
{
    const char *mnemonic;   ///< assembler mnemonic
    InstFormat format;      ///< encoding format
    FuClass fu;             ///< functional-unit class
    std::uint8_t latency;   ///< execute latency in cycles (R10000-like)
    bool isLoad;            ///< reads data memory
    bool isStore;           ///< writes data memory
    bool isBranch;          ///< conditional control transfer
    bool isJump;            ///< unconditional control transfer
    bool isCall;            ///< writes a return address (jal/jalr)
    bool isReturn;          ///< jr (by convention through $ra)
    bool isFp;              ///< operates on the FP register file
    std::uint8_t memSize;   ///< access size in bytes (0 if not memory)
    bool memSigned;         ///< sign-extend a sub-word load
    bool writesGpr;         ///< rd is a GPR destination
    bool writesFpr;         ///< rd is an FPR destination
};

/** Property table lookup; panics on an out-of-range opcode. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic of @p op. */
std::string mnemonic(Opcode op);

/**
 * Look up an opcode by mnemonic.
 * @return true and sets @p out when found.
 */
bool opcodeFromMnemonic(const std::string &name, Opcode &out);

} // namespace arl::isa

#endif // ARL_ISA_OPCODES_HH
