/**
 * @file
 * Register-operand extraction for dependence tracking.
 *
 * The out-of-order timing model needs, for every decoded
 * instruction, the set of architectural source registers and the
 * (at most one) destination register.  GPRs and FPRs live in
 * separate spaces; we map them into a flat 64-entry space
 * (0..31 = GPR, 32..63 = FPR) so renaming tables can be simple
 * arrays.  GPR0 ($zero) is never a real dependence.
 */

#ifndef ARL_ISA_OPERANDS_HH
#define ARL_ISA_OPERANDS_HH

#include <cstdint>

#include "isa/inst.hh"
#include "isa/registers.hh"

namespace arl::isa
{

/** Flat architectural register id: 0..31 GPR, 32..63 FPR. */
using FlatReg = std::uint8_t;

constexpr FlatReg FprBase = 32;
constexpr unsigned NumFlatRegs = 64;
/** Sentinel meaning "no register". */
constexpr FlatReg NoReg = 0xff;

/** Up to three sources. */
struct SourceList
{
    FlatReg regs[3] = {NoReg, NoReg, NoReg};
    std::uint8_t count = 0;

    void
    add(FlatReg r)
    {
        // $zero is constant; never a dependence.
        if (r == reg::Zero)
            return;
        regs[count++] = r;
    }
};

/** Architectural sources read by @p inst. */
inline SourceList
instSources(const DecodedInst &inst)
{
    SourceList out;
    const OpInfo &info = inst.info();
    auto gpr = [](RegIndex r) { return static_cast<FlatReg>(r); };
    auto fpr = [](RegIndex r) { return static_cast<FlatReg>(FprBase + r); };

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::J:
      case Opcode::Jal:
      case Opcode::Lui:
        break;
      case Opcode::Syscall:
        // Syscall number and first argument.
        out.add(gpr(reg::V0));
        out.add(gpr(reg::A0));
        break;
      case Opcode::Jr:
      case Opcode::Jalr:
        out.add(gpr(inst.rs));
        break;
      case Opcode::Beq:
      case Opcode::Bne:
        out.add(gpr(inst.rd));
        out.add(gpr(inst.rs));
        break;
      case Opcode::Blez:
      case Opcode::Bgtz:
      case Opcode::Bltz:
      case Opcode::Bgez:
        out.add(gpr(inst.rs));
        break;
      case Opcode::Mtc1:
        out.add(gpr(inst.rs));
        break;
      case Opcode::Mfc1:
      case Opcode::FnegS:
      case Opcode::FmovS:
      case Opcode::CvtSW:
      case Opcode::CvtWS:
        out.add(fpr(inst.rs));
        break;
      case Opcode::FeqS:
      case Opcode::FltS:
      case Opcode::FleS:
        out.add(fpr(inst.rs));
        out.add(fpr(inst.rt));
        break;
      default:
        if (info.isLoad) {
            out.add(gpr(inst.rs));          // base register
        } else if (info.isStore) {
            out.add(gpr(inst.rs));          // base register
            // Store data source.
            if (inst.op == Opcode::Swc1)
                out.add(fpr(inst.rd));
            else
                out.add(gpr(inst.rd));
        } else if (info.isFp) {
            // Three-register FP arithmetic.
            out.add(fpr(inst.rs));
            out.add(fpr(inst.rt));
        } else if (info.format == InstFormat::R) {
            out.add(gpr(inst.rs));
            out.add(gpr(inst.rt));
        } else {
            // I-format integer ALU.
            out.add(gpr(inst.rs));
        }
        break;
    }
    return out;
}

/**
 * Architectural destination written by @p inst, or NoReg.
 * jal/jalr write the link register.
 */
inline FlatReg
instDest(const DecodedInst &inst)
{
    const OpInfo &info = inst.info();
    if (inst.op == Opcode::Jal)
        return static_cast<FlatReg>(reg::Ra);
    if (inst.op == Opcode::Jalr)
        return inst.rd == reg::Zero ? NoReg
                                    : static_cast<FlatReg>(inst.rd);
    if (inst.op == Opcode::Syscall)
        return static_cast<FlatReg>(reg::V0);
    if (info.writesFpr)
        return static_cast<FlatReg>(FprBase + inst.rd);
    if (info.writesGpr)
        return inst.rd == reg::Zero ? NoReg
                                    : static_cast<FlatReg>(inst.rd);
    return NoReg;
}

} // namespace arl::isa

#endif // ARL_ISA_OPERANDS_HH
