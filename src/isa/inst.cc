#include "isa/inst.hh"

#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "isa/registers.hh"

namespace arl::isa
{

Word
encode(const DecodedInst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    Word word = 0;
    word = insertBits(word, 26, 6, static_cast<std::uint32_t>(inst.op));
    switch (info.format) {
      case InstFormat::R:
        ARL_ASSERT(inst.rd < 32 && inst.rs < 32 && inst.rt < 32);
        word = insertBits(word, 21, 5, inst.rd);
        word = insertBits(word, 16, 5, inst.rs);
        word = insertBits(word, 11, 5, inst.rt);
        break;
      case InstFormat::I: {
        ARL_ASSERT(inst.rd < 32 && inst.rs < 32);
        ARL_ASSERT(inst.imm >= -32768 && inst.imm <= 65535,
                   "imm=%d does not fit 16 bits", inst.imm);
        word = insertBits(word, 21, 5, inst.rd);
        word = insertBits(word, 16, 5, inst.rs);
        word = insertBits(word, 0, 16,
                          static_cast<std::uint32_t>(inst.imm) & 0xffffu);
        break;
      }
      case InstFormat::J:
        ARL_ASSERT(inst.target < (1u << 26));
        word = insertBits(word, 0, 26, inst.target);
        break;
    }
    return word;
}

bool
decode(Word word, DecodedInst &out)
{
    std::uint32_t opfield = bits(word, 26, 6);
    if (opfield >= NumOpcodes)
        return false;
    out = DecodedInst{};
    out.op = static_cast<Opcode>(opfield);
    const OpInfo &info = opInfo(out.op);
    switch (info.format) {
      case InstFormat::R:
        out.rd = static_cast<RegIndex>(bits(word, 21, 5));
        out.rs = static_cast<RegIndex>(bits(word, 16, 5));
        out.rt = static_cast<RegIndex>(bits(word, 11, 5));
        break;
      case InstFormat::I:
        out.rd = static_cast<RegIndex>(bits(word, 21, 5));
        out.rs = static_cast<RegIndex>(bits(word, 16, 5));
        // Lui/Andi/Ori/Xori treat the immediate as unsigned; keep the
        // sign-extended value here and let the executor mask as needed.
        out.imm = signExtend(bits(word, 0, 16), 16);
        break;
      case InstFormat::J:
        out.target = bits(word, 0, 26);
        break;
    }
    return true;
}

Addr
jumpTarget(const DecodedInst &inst, Addr pc)
{
    return (pc & 0xf0000000u) | (inst.target << 2);
}

Addr
branchTarget(const DecodedInst &inst, Addr pc)
{
    return pc + 4 +
           (static_cast<std::uint32_t>(inst.imm) << 2);
}

std::string
disassemble(const DecodedInst &inst, Addr pc)
{
    const OpInfo &info = opInfo(inst.op);
    std::ostringstream os;
    os << info.mnemonic;

    auto hex = [](Addr a) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "0x%08x", a);
        return std::string(buf);
    };

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Syscall:
        break;
      case Opcode::J:
      case Opcode::Jal:
        os << " " << hex(jumpTarget(inst, pc));
        break;
      case Opcode::Jr:
        os << " " << gprName(inst.rs);
        break;
      case Opcode::Jalr:
        os << " " << gprName(inst.rd) << ", " << gprName(inst.rs);
        break;
      case Opcode::Beq:
      case Opcode::Bne:
        os << " " << gprName(inst.rd) << ", " << gprName(inst.rs)
           << ", " << hex(branchTarget(inst, pc));
        break;
      case Opcode::Blez:
      case Opcode::Bgtz:
      case Opcode::Bltz:
      case Opcode::Bgez:
        os << " " << gprName(inst.rs) << ", "
           << hex(branchTarget(inst, pc));
        break;
      case Opcode::Lui:
        os << " " << gprName(inst.rd) << ", " << inst.imm;
        break;
      default:
        if (info.isLoad || info.isStore) {
            std::string target_reg = info.isFp || info.writesFpr
                                         ? fprName(inst.rd)
                                         : gprName(inst.rd);
            if (inst.op == Opcode::Lwc1 || inst.op == Opcode::Swc1)
                target_reg = fprName(inst.rd);
            os << " " << target_reg << ", " << inst.imm << "("
               << gprName(inst.rs) << ")";
        } else if (info.format == InstFormat::R) {
            auto reg_name = [&info](RegIndex r) {
                return info.isFp ? fprName(r) : gprName(r);
            };
            if (inst.op == Opcode::Mtc1) {
                os << " " << fprName(inst.rd) << ", " << gprName(inst.rs);
            } else if (inst.op == Opcode::Mfc1) {
                os << " " << gprName(inst.rd) << ", " << fprName(inst.rs);
            } else if (inst.op == Opcode::FeqS || inst.op == Opcode::FltS ||
                       inst.op == Opcode::FleS) {
                os << " " << gprName(inst.rd) << ", " << fprName(inst.rs)
                   << ", " << fprName(inst.rt);
            } else if (inst.op == Opcode::FnegS ||
                       inst.op == Opcode::FmovS ||
                       inst.op == Opcode::CvtSW ||
                       inst.op == Opcode::CvtWS) {
                os << " " << reg_name(inst.rd) << ", " << reg_name(inst.rs);
            } else {
                os << " " << reg_name(inst.rd) << ", " << reg_name(inst.rs)
                   << ", " << reg_name(inst.rt);
            }
        } else {
            // I-format ALU.
            os << " " << gprName(inst.rd) << ", " << gprName(inst.rs)
               << ", " << inst.imm;
        }
        break;
    }
    return os.str();
}

} // namespace arl::isa
