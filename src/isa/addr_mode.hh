/**
 * @file
 * Addressing-mode-based static access-region classification.
 *
 * Implements the paper's "Static Prediction" heuristics (§3.4.1):
 *
 *   1. Constant addressing        => non-stack (conclusive).
 *   2. $sp or $fp base register   => stack (conclusive).
 *   3. $gp base register          => non-stack (conclusive).
 *   4. Any other base register    => *predict* non-stack
 *                                    (inconclusive; these are the
 *                                    instructions that occupy ARPT
 *                                    entries).
 *
 * "Conclusive" hints bypass the ARPT entirely: the dispatcher trusts
 * the (pre-)decoder over the table, and the instruction is never
 * recorded in the table (saving space, §3.4.1).
 */

#ifndef ARL_ISA_ADDR_MODE_HH
#define ARL_ISA_ADDR_MODE_HH

#include "isa/inst.hh"
#include "isa/registers.hh"

namespace arl::isa
{

/** Outcome of the addressing-mode inspection. */
enum class AddrModeHint : std::uint8_t
{
    StackConclusive,     ///< rule 2: $sp/$fp base
    NonStackConclusive,  ///< rules 1 and 3: constant or $gp base
    PredictNonStack      ///< rule 4: unknown base, default prediction
};

/**
 * Classify a memory instruction's addressing mode.
 * Must only be called on loads/stores.
 */
inline AddrModeHint
classifyAddrMode(const DecodedInst &inst)
{
    RegIndex base = inst.baseReg();
    if (base == reg::Sp || base == reg::Fp)
        return AddrModeHint::StackConclusive;
    if (base == reg::Gp || base == reg::Zero)
        return AddrModeHint::NonStackConclusive;
    return AddrModeHint::PredictNonStack;
}

/** True when the hint resolves the region without the ARPT. */
inline bool
isConclusive(AddrModeHint hint)
{
    return hint != AddrModeHint::PredictNonStack;
}

/** The region (stack?) implied by a hint, conclusive or default. */
inline bool
hintSaysStack(AddrModeHint hint)
{
    return hint == AddrModeHint::StackConclusive;
}

} // namespace arl::isa

#endif // ARL_ISA_ADDR_MODE_HH
