#include "isa/opcodes.hh"

#include <array>

#include "common/logging.hh"

namespace arl::isa
{

namespace
{

using F = InstFormat;
using Fu = FuClass;

/**
 * One row per opcode, in enum order.  Latencies follow the MIPS
 * R10000 as the paper specifies (Table 4): 1-cycle integer ALU,
 * 6-cycle multiply, 35-cycle divide, 2-3 cycle FP add/multiply,
 * 19-cycle FP divide.
 */
constexpr std::array<OpInfo, NumOpcodes> table = {{
    //            mnemonic  fmt   fu          lat ld     st     br     jmp    call   ret    fp     sz sgn    wG     wF
    /* Add    */ {"add",    F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Sub    */ {"sub",    F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Mul    */ {"mul",    F::R, Fu::IntMult, 6, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Div    */ {"div",    F::R, Fu::IntMult, 35, false, false, false, false, false, false, false, 0, false, true, false},
    /* Rem    */ {"rem",    F::R, Fu::IntMult, 35, false, false, false, false, false, false, false, 0, false, true, false},
    /* And    */ {"and",    F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Or     */ {"or",     F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Xor    */ {"xor",    F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Nor    */ {"nor",    F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Sllv   */ {"sllv",   F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Srlv   */ {"srlv",   F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Srav   */ {"srav",   F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Slt    */ {"slt",    F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Sltu   */ {"sltu",   F::R, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},

    /* Addi   */ {"addi",   F::I, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Andi   */ {"andi",   F::I, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Ori    */ {"ori",    F::I, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Xori   */ {"xori",   F::I, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Slti   */ {"slti",   F::I, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Sltiu  */ {"sltiu",  F::I, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Lui    */ {"lui",    F::I, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Sll    */ {"sll",    F::I, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Srl    */ {"srl",    F::I, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},
    /* Sra    */ {"sra",    F::I, Fu::IntAlu,  1, false, false, false, false, false, false, false, 0, false, true,  false},

    /* Lw     */ {"lw",     F::I, Fu::Mem,     1, true,  false, false, false, false, false, false, 4, true,  true,  false},
    /* Lh     */ {"lh",     F::I, Fu::Mem,     1, true,  false, false, false, false, false, false, 2, true,  true,  false},
    /* Lhu    */ {"lhu",    F::I, Fu::Mem,     1, true,  false, false, false, false, false, false, 2, false, true,  false},
    /* Lb     */ {"lb",     F::I, Fu::Mem,     1, true,  false, false, false, false, false, false, 1, true,  true,  false},
    /* Lbu    */ {"lbu",    F::I, Fu::Mem,     1, true,  false, false, false, false, false, false, 1, false, true,  false},
    /* Sw     */ {"sw",     F::I, Fu::Mem,     1, false, true,  false, false, false, false, false, 4, false, false, false},
    /* Sh     */ {"sh",     F::I, Fu::Mem,     1, false, true,  false, false, false, false, false, 2, false, false, false},
    /* Sb     */ {"sb",     F::I, Fu::Mem,     1, false, true,  false, false, false, false, false, 1, false, false, false},
    /* Lwc1   */ {"lwc1",   F::I, Fu::Mem,     1, true,  false, false, false, false, false, true,  4, false, false, true},
    /* Swc1   */ {"swc1",   F::I, Fu::Mem,     1, false, true,  false, false, false, false, true,  4, false, false, false},

    /* FaddS  */ {"fadd.s", F::R, Fu::FpAlu,   3, false, false, false, false, false, false, true,  0, false, false, true},
    /* FsubS  */ {"fsub.s", F::R, Fu::FpAlu,   3, false, false, false, false, false, false, true,  0, false, false, true},
    /* FmulS  */ {"fmul.s", F::R, Fu::FpMult,  3, false, false, false, false, false, false, true,  0, false, false, true},
    /* FdivS  */ {"fdiv.s", F::R, Fu::FpMult,  19, false, false, false, false, false, false, true, 0, false, false, true},
    /* FnegS  */ {"fneg.s", F::R, Fu::FpAlu,   1, false, false, false, false, false, false, true,  0, false, false, true},
    /* FmovS  */ {"fmov.s", F::R, Fu::FpAlu,   1, false, false, false, false, false, false, true,  0, false, false, true},
    /* CvtSW  */ {"cvt.s.w", F::R, Fu::FpAlu,  3, false, false, false, false, false, false, true,  0, false, false, true},
    /* CvtWS  */ {"cvt.w.s", F::R, Fu::FpAlu,  3, false, false, false, false, false, false, true,  0, false, false, true},
    /* FeqS   */ {"feq.s",  F::R, Fu::FpAlu,   3, false, false, false, false, false, false, true,  0, false, true,  false},
    /* FltS   */ {"flt.s",  F::R, Fu::FpAlu,   3, false, false, false, false, false, false, true,  0, false, true,  false},
    /* FleS   */ {"fle.s",  F::R, Fu::FpAlu,   3, false, false, false, false, false, false, true,  0, false, true,  false},
    /* Mtc1   */ {"mtc1",   F::R, Fu::FpAlu,   1, false, false, false, false, false, false, true,  0, false, false, true},
    /* Mfc1   */ {"mfc1",   F::R, Fu::FpAlu,   1, false, false, false, false, false, false, true,  0, false, true,  false},

    /* Beq    */ {"beq",    F::I, Fu::IntAlu,  1, false, false, true,  false, false, false, false, 0, false, false, false},
    /* Bne    */ {"bne",    F::I, Fu::IntAlu,  1, false, false, true,  false, false, false, false, 0, false, false, false},
    /* Blez   */ {"blez",   F::I, Fu::IntAlu,  1, false, false, true,  false, false, false, false, 0, false, false, false},
    /* Bgtz   */ {"bgtz",   F::I, Fu::IntAlu,  1, false, false, true,  false, false, false, false, 0, false, false, false},
    /* Bltz   */ {"bltz",   F::I, Fu::IntAlu,  1, false, false, true,  false, false, false, false, 0, false, false, false},
    /* Bgez   */ {"bgez",   F::I, Fu::IntAlu,  1, false, false, true,  false, false, false, false, 0, false, false, false},
    /* J      */ {"j",      F::J, Fu::None,    1, false, false, false, true,  false, false, false, 0, false, false, false},
    /* Jal    */ {"jal",    F::J, Fu::None,    1, false, false, false, true,  true,  false, false, 0, false, true,  false},
    /* Jr     */ {"jr",     F::R, Fu::None,    1, false, false, false, true,  false, true,  false, 0, false, false, false},
    /* Jalr   */ {"jalr",   F::R, Fu::None,    1, false, false, false, true,  true,  false, false, 0, false, true,  false},

    /* Syscall*/ {"syscall", F::R, Fu::None,   1, false, false, false, false, false, false, false, 0, false, false, false},
    /* Nop    */ {"nop",    F::R, Fu::None,    1, false, false, false, false, false, false, false, 0, false, false, false},
}};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    auto index = static_cast<unsigned>(op);
    if (index >= NumOpcodes)
        panic("opInfo: opcode out of range (%u)", index);
    return table[index];
}

std::string
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

bool
opcodeFromMnemonic(const std::string &name, Opcode &out)
{
    for (unsigned i = 0; i < NumOpcodes; ++i) {
        if (name == table[i].mnemonic) {
            out = static_cast<Opcode>(i);
            return true;
        }
    }
    return false;
}

} // namespace arl::isa
