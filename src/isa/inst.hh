/**
 * @file
 * Decoded instruction representation and binary encode/decode.
 */

#ifndef ARL_ISA_INST_HH
#define ARL_ISA_INST_HH

#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace arl::isa
{

/**
 * A fully decoded ARL-ISA instruction.
 *
 * Field use by format:
 *  - R: rd, rs, rt registers (GPR or FPR per opcode).
 *  - I: rd, rs registers and a 16-bit immediate.  For loads, rd is
 *    the destination and rs the base register; for stores, rd is the
 *    *source* and rs the base; for beq/bne, rd and rs are compared.
 *  - J: target is a 26-bit word index within the PC's 256 MB region.
 */
struct DecodedInst
{
    Opcode op = Opcode::Nop;
    RegIndex rd = 0;
    RegIndex rs = 0;
    RegIndex rt = 0;
    std::int32_t imm = 0;        ///< sign-extended immediate (I format)
    std::uint32_t target = 0;    ///< raw 26-bit target (J format)

    /** Properties of this instruction's opcode. */
    const OpInfo &info() const { return opInfo(op); }

    /** True when this is a load or store. */
    bool isMem() const { return info().isLoad || info().isStore; }

    /**
     * Base register of a memory instruction (the paper's
     * "index register"); only meaningful when isMem().
     */
    RegIndex baseReg() const { return rs; }

    bool operator==(const DecodedInst &other) const = default;
};

/**
 * Encode @p inst into a 32-bit instruction word.
 * Panics when a field does not fit (assembler bugs).
 */
Word encode(const DecodedInst &inst);

/**
 * Decode a 32-bit instruction word.
 * @return false when the opcode field is not a valid opcode.
 */
bool decode(Word word, DecodedInst &out);

/**
 * Resolve the jump target of a J-format instruction located at
 * @p pc: (pc & 0xf0000000) | (target << 2).
 */
Addr jumpTarget(const DecodedInst &inst, Addr pc);

/**
 * Resolve a branch target: pc + 4 + (imm << 2).
 */
Addr branchTarget(const DecodedInst &inst, Addr pc);

/** Disassemble one instruction (at @p pc, for target rendering). */
std::string disassemble(const DecodedInst &inst, Addr pc = 0);

} // namespace arl::isa

#endif // ARL_ISA_INST_HH
