#include "isa/registers.hh"

#include <array>
#include <cstdlib>

namespace arl::isa
{

namespace
{

const std::array<const char *, NumGprs> gprNames = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
};

} // namespace

std::string
gprName(RegIndex index)
{
    if (index < NumGprs)
        return gprNames[index];
    return "$?";
}

std::string
fprName(RegIndex index)
{
    return "$f" + std::to_string(static_cast<int>(index));
}

int
parseGprName(const std::string &name)
{
    if (name.empty())
        return -1;
    for (unsigned i = 0; i < NumGprs; ++i) {
        if (name == gprNames[i])
            return static_cast<int>(i);
    }
    // Numeric forms: "$12" or "r12".
    std::string digits;
    if (name[0] == '$' || name[0] == 'r')
        digits = name.substr(1);
    else
        return -1;
    if (digits.empty())
        return -1;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return -1;
    }
    long value = std::strtol(digits.c_str(), nullptr, 10);
    if (value < 0 || value >= static_cast<long>(NumGprs))
        return -1;
    return static_cast<int>(value);
}

int
parseFprName(const std::string &name)
{
    std::string digits;
    if (name.size() >= 2 && name[0] == '$' && name[1] == 'f')
        digits = name.substr(2);
    else if (name.size() >= 1 && name[0] == 'f')
        digits = name.substr(1);
    else
        return -1;
    if (digits.empty())
        return -1;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return -1;
    }
    long value = std::strtol(digits.c_str(), nullptr, 10);
    if (value < 0 || value >= static_cast<long>(NumFprs))
        return -1;
    return static_cast<int>(value);
}

} // namespace arl::isa
