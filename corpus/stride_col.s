# strided: column-major walk of a 64x64 row-major matrix — a fixed
# 256-byte stride between consecutive references.
        .data
mat:    .space 16384
        .text
main:   la   $t0, mat
        li   $t1, 4096          # elements
        li   $t2, 0             # i
init:   beq  $t2, $t1, cols
        sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
cols:   li   $t3, 0             # col
        li   $t5, 0             # acc
        li   $t6, 64            # dimension
cloop:  beq  $t3, $t6, done
        la   $t0, mat
        sll  $t4, $t3, 2
        add  $t0, $t0, $t4      # &mat[0][col]
        li   $t2, 0             # row
rloop:  beq  $t2, $t6, cnext
        lw   $t4, 0($t0)
        add  $t5, $t5, $t4
        addi $t0, $t0, 256      # next row, same column
        addi $t2, $t2, 1
        j    rloop
cnext:  addi $t3, $t3, 1
        j    cloop
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t5
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
