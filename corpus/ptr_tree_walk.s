# pointer_chase: recursive sum over an implicit 511-node heap binary
# tree (children of i at 2i+1 / 2i+2) — heap loads interleaved with
# call-frame stack traffic.
        .text
main:   li   $a0, 2048          # 511 values * 4 bytes, rounded up
        li   $v0, 13            # malloc
        syscall
        move $s0, $v0           # tree base
        li   $t1, 511
        li   $t2, 0             # i
init:   beq  $t2, $t1, walk
        sll  $t3, $t2, 2
        add  $t3, $t3, $s0
        sw   $t2, 0($t3)        # val[i] = i
        addi $t2, $t2, 1
        j    init
walk:   li   $a0, 0             # root index
        jal  sum
        move $a0, $v0
        li   $v0, 1             # print_int(tree sum)
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall

# sum($a0 = node index) -> $v0: val[i] + sum(2i+1) + sum(2i+2)
sum:    li   $t0, 511
        slt  $t1, $a0, $t0
        bne  $t1, $zero, rec
        li   $v0, 0             # index out of range: empty subtree
        jr   $ra
rec:    addi $sp, $sp, -12
        sw   $ra, 0($sp)
        sw   $s1, 4($sp)
        sw   $a0, 8($sp)
        sll  $t2, $a0, 2
        add  $t2, $t2, $s0
        lw   $s1, 0($t2)        # val[i]
        sll  $a0, $a0, 1
        addi $a0, $a0, 1        # left child 2i+1
        jal  sum
        add  $s1, $s1, $v0
        lw   $a0, 8($sp)
        sll  $a0, $a0, 1
        addi $a0, $a0, 2        # right child 2i+2
        jal  sum
        add  $v0, $s1, $v0
        lw   $ra, 0($sp)
        lw   $s1, 4($sp)
        addi $sp, $sp, 12
        jr   $ra
