# recursion: divide-and-conquer reduction of a 1024-word static array
# — recursive halving mixes stack frames with data-region leaf loads.
        .data
arr:    .space 4096
        .text
main:   la   $t0, arr
        li   $t1, 1024          # elements
        li   $t2, 0             # i
        li   $t9, 5
init:   beq  $t2, $t1, go
        mul  $t3, $t2, $t9      # arr[i] = 5 * i
        sw   $t3, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
go:     li   $a0, 0             # lo
        li   $a1, 1024          # hi (exclusive)
        jal  dsum
        move $a0, $v0
        li   $v0, 1             # print_int(sum)
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall

# dsum($a0 = lo, $a1 = hi) -> $v0 = sum(arr[lo..hi))
dsum:   sub  $t0, $a1, $a0
        li   $t1, 1
        bne  $t0, $t1, split
        la   $t2, arr           # single element: load the leaf
        sll  $t3, $a0, 2
        add  $t2, $t2, $t3
        lw   $v0, 0($t2)
        jr   $ra
split:  addi $sp, $sp, -16
        sw   $ra, 0($sp)
        sw   $a0, 4($sp)
        sw   $a1, 8($sp)
        add  $t2, $a0, $a1
        srl  $t2, $t2, 1        # mid
        move $a1, $t2
        jal  dsum               # left half
        sw   $v0, 12($sp)
        lw   $a0, 4($sp)
        lw   $a1, 8($sp)
        add  $t2, $a0, $a1
        srl  $t2, $t2, 1
        move $a0, $t2
        jal  dsum               # right half
        lw   $t3, 12($sp)
        add  $v0, $v0, $t3
        lw   $ra, 0($sp)
        addi $sp, $sp, 16
        jr   $ra
