# mixed_phase: a streaming phase (unit-stride reduce over a static
# array) followed by a pointer-chase phase (heap linked list) — the
# region mix flips from data to heap partway through.
        .data
arr:    .space 4096
        .text
main:   la   $t0, arr           # ---- phase 1: stream
        li   $t1, 1024
        li   $t2, 0
init:   beq  $t2, $t1, sum
        sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
sum:    la   $t0, arr
        li   $t2, 0
        li   $s6, 0             # acc
sloop:  beq  $t2, $t1, phase2
        lw   $t4, 0($t0)
        add  $s6, $s6, $t4
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    sloop
phase2: li   $s0, 0             # ---- phase 2: build + chase a list
        li   $s1, 512
        li   $s2, 0
build:  beq  $s2, $s1, walk
        li   $a0, 8
        li   $v0, 13            # malloc(8)
        syscall
        sw   $s2, 0($v0)
        sw   $s0, 4($v0)
        move $s0, $v0
        addi $s2, $s2, 1
        j    build
walk:   beq  $s0, $zero, done
        lw   $t1, 0($s0)
        add  $s6, $s6, $t1
        lw   $s0, 4($s0)
        j    walk
done:   li   $v0, 1             # print_int(stream + chase acc)
        move $a0, $s6
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
