# mixed_phase: four alternating rounds over one array — a unit-stride
# pass, then a stride-8 pass — so the access pattern itself cycles.
        .data
arr:    .space 16384
        .text
main:   la   $t0, arr
        li   $t1, 4096          # elements
        li   $t2, 0
init:   beq  $t2, $t1, rounds
        sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
rounds: li   $s0, 0             # round
        li   $s1, 4
        li   $s2, 0             # acc
round:  beq  $s0, $s1, done
        la   $t0, arr           # -- unit-stride pass
        li   $t2, 0
unit:   beq  $t2, $t1, gapp
        lw   $t4, 0($t0)
        add  $s2, $s2, $t4
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    unit
gapp:   la   $t0, arr           # -- stride-8 pass
        li   $t2, 0
gap:    slt  $t5, $t2, $t1
        beq  $t5, $zero, rnext
        lw   $t4, 0($t0)
        add  $s2, $s2, $t4
        addi $t0, $t0, 32
        addi $t2, $t2, 8
        j    gap
rnext:  li   $t6, 1048575
        and  $s2, $s2, $t6      # keep the checksum in 20 bits
        addi $s0, $s0, 1
        j    round
done:   li   $v0, 1             # print_int(checksum)
        move $a0, $s2
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
