# sparse_indirect: scatter out[idx[i]] += i through a permutation
# index stream (31 is odd, so (31 * i) mod 1024 visits every slot).
        .data
idx:    .space 4096
out:    .space 4096
        .text
main:   la   $t0, idx
        la   $t1, out
        li   $t2, 1024          # elements
        li   $t3, 0             # i
        li   $t9, 31
init:   beq  $t3, $t2, scat
        mul  $t4, $t3, $t9
        li   $t5, 1023
        and  $t4, $t4, $t5
        sw   $t4, 0($t0)
        sw   $zero, 0($t1)      # out[i] = 0
        addi $t0, $t0, 4
        addi $t1, $t1, 4
        addi $t3, $t3, 1
        j    init
scat:   la   $t0, idx
        la   $t1, out
        li   $t3, 0
sloop:  beq  $t3, $t2, sum
        lw   $t4, 0($t0)        # index load
        sll  $t4, $t4, 2
        add  $t4, $t4, $t1
        lw   $t5, 0($t4)        # read-modify-write at the target
        add  $t5, $t5, $t3
        sw   $t5, 0($t4)
        addi $t0, $t0, 4
        addi $t3, $t3, 1
        j    sloop
sum:    la   $t1, out
        li   $t3, 0
        li   $t6, 0             # acc
rloop:  beq  $t3, $t2, done
        lw   $t5, 0($t1)
        add  $t6, $t6, $t5
        addi $t1, $t1, 4
        addi $t3, $t3, 1
        j    rloop
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t6
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
