# recursion: Ackermann(3, 3) = 61 — ~2.4k calls with deeply nested
# frames; the most stack-intensive program in the corpus.
        .text
main:   li   $a0, 3
        li   $a1, 3
        jal  ack
        move $a0, $v0
        li   $v0, 1             # print_int(A(3,3)) = 61
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall

# ack($a0 = m, $a1 = n) -> $v0
ack:    bne  $a0, $zero, am
        addi $v0, $a1, 1        # A(0, n) = n + 1
        jr   $ra
am:     bne  $a1, $zero, amn
        addi $sp, $sp, -4       # A(m, 0) = A(m-1, 1)
        sw   $ra, 0($sp)
        addi $a0, $a0, -1
        li   $a1, 1
        jal  ack
        lw   $ra, 0($sp)
        addi $sp, $sp, 4
        jr   $ra
amn:    addi $sp, $sp, -8       # A(m, n) = A(m-1, A(m, n-1))
        sw   $ra, 0($sp)
        sw   $a0, 4($sp)
        addi $a1, $a1, -1
        jal  ack
        lw   $a0, 4($sp)
        addi $a0, $a0, -1
        move $a1, $v0
        jal  ack
        lw   $ra, 0($sp)
        addi $sp, $sp, 8
        jr   $ra
