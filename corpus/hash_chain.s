# hash_probe: separate chaining — 256 static bucket heads, 512 heap
# nodes pushed onto (key mod 256) chains, then every chain walked.
# Mixes a data-region bucket array with heap chain traversal.
        .data
bkt:    .space 1024             # 256 head pointers
        .text
main:   la   $t0, bkt
        li   $t1, 256
        li   $t2, 0
clr:    beq  $t2, $t1, fill
        sw   $zero, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    clr
fill:   li   $s0, 1             # i = 1 .. 512
        li   $s1, 513
        li   $s3, 40503         # a small odd key multiplier
ins:    beq  $s0, $s1, walk
        mul  $s4, $s0, $s3      # key = 40503 * i
        li   $t5, 255
        and  $t6, $s4, $t5      # bucket = key mod 256
        sll  $t6, $t6, 2
        la   $t7, bkt
        add  $s5, $t6, $t7      # &bkt[bucket]
        li   $a0, 8
        li   $v0, 13            # malloc a chain node
        syscall
        sw   $s4, 0($v0)        # node->key
        lw   $t8, 0($s5)
        sw   $t8, 4($v0)        # node->next = old head
        sw   $v0, 0($s5)        # head = node
        addi $s0, $s0, 1
        j    ins
walk:   li   $s0, 0             # bucket index
        li   $t1, 256
        li   $s2, 0             # acc (masked to stay small)
bloop:  beq  $s0, $t1, done
        sll  $t6, $s0, 2
        la   $t7, bkt
        add  $t6, $t6, $t7
        lw   $t0, 0($t6)        # chain head
chain:  beq  $t0, $zero, bnext
        lw   $t4, 0($t0)        # node->key
        add  $s2, $s2, $t4
        li   $t5, 1048575
        and  $s2, $s2, $t5      # keep the checksum in 20 bits
        lw   $t0, 4($t0)        # chase next
        j    chain
bnext:  addi $s0, $s0, 1
        j    bloop
done:   li   $v0, 1             # print_int(checksum)
        move $a0, $s2
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
