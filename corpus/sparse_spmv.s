# sparse_indirect: CSR-style y = A*x with 256 rows of 4 synthetic
# nonzeros each; column indices (7i + 61j) mod 256 gather from x.
        .data
x:      .space 1024
        .text
main:   la   $t0, x
        li   $t1, 256           # vector length
        li   $t2, 0             # i
init:   beq  $t2, $t1, spmv
        sw   $t2, 0($t0)        # x[i] = i
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
spmv:   la   $t0, x
        li   $t2, 0             # row i
        li   $s0, 0             # total acc (sum of all y[i])
        li   $s1, 7
        li   $s2, 61
orow:   beq  $t2, $t1, done
        li   $t3, 0             # j: nonzero within the row
        li   $t4, 4
        mul  $t5, $t2, $s1      # row's base column term
irow:   beq  $t3, $t4, rnext
        mul  $t6, $t3, $s2
        add  $t6, $t6, $t5      # col = (7i + 61j) ...
        li   $t7, 255
        and  $t6, $t6, $t7      # ... mod 256
        sll  $t6, $t6, 2
        add  $t6, $t6, $t0
        lw   $t8, 0($t6)        # gather x[col]
        add  $s0, $s0, $t8
        addi $t3, $t3, 1
        j    irow
rnext:  addi $t2, $t2, 1
        j    orow
done:   li   $v0, 1             # print_int(acc)
        move $a0, $s0
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
