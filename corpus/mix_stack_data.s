# mixed_phase: per-element helper calls — every array element is
# passed through a function whose frame spills to the stack, giving a
# steady half-data / half-stack reference mix.
        .data
arr:    .space 4096
        .text
main:   la   $t0, arr
        li   $t1, 1024          # elements
        li   $t2, 0
init:   beq  $t2, $t1, apply
        sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
apply:  la   $s0, arr
        li   $s1, 0             # i
        li   $s2, 0             # acc
aloop:  li   $t3, 1024
        beq  $s1, $t3, done
        lw   $a0, 0($s0)        # data load
        jal  scale              # stack-spilling helper
        add  $s2, $s2, $v0
        li   $t6, 1048575
        and  $s2, $s2, $t6      # keep the checksum in 20 bits
        addi $s0, $s0, 4
        addi $s1, $s1, 1
        j    aloop
done:   li   $v0, 1             # print_int(checksum)
        move $a0, $s2
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall

# scale($a0) -> $v0 = 3 * $a0 + 1, via a deliberately spilled frame
scale:  addi $sp, $sp, -8
        sw   $a0, 0($sp)        # spill (stack store)
        li   $t4, 3
        mul  $t0, $a0, $t4
        sw   $t0, 4($sp)        # spill the product too
        lw   $t1, 4($sp)        # reload (stack loads)
        lw   $t2, 0($sp)
        sub  $t3, $t1, $t2      # 3a - a = 2a
        add  $v0, $t3, $t2      # 2a + a = 3a
        addi $v0, $v0, 1
        addi $sp, $sp, 8
        jr   $ra
