# mixed_phase: 4096 random-index probes of a static array driven by
# the deterministic guest rand syscall — irregular but reproducible.
        .data
arr:    .space 4096
        .text
main:   la   $t0, arr
        li   $t1, 1024          # elements
        li   $t2, 0
init:   beq  $t2, $t1, walk
        sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
walk:   li   $s0, 0             # steps
        li   $s1, 4096
        li   $s2, 0             # acc
wloop:  beq  $s0, $s1, done
        li   $v0, 17            # rand() -> $v0 (deterministic)
        syscall
        li   $t3, 1023
        and  $t4, $v0, $t3      # index = rand mod 1024
        sll  $t4, $t4, 2
        la   $t5, arr
        add  $t4, $t4, $t5
        lw   $t6, 0($t4)        # probe
        add  $s2, $s2, $t6
        li   $t7, 1048575
        and  $s2, $s2, $t7      # keep the checksum in 20 bits
        addi $s0, $s0, 1
        j    wloop
done:   li   $v0, 1             # print_int(checksum)
        move $a0, $s2
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
