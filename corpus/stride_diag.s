# strided: repeated diagonal sweeps of a 64x64 matrix (260-byte
# stride) starting from each of the first 16 columns.
        .data
mat:    .space 16384
        .text
main:   la   $t0, mat
        li   $t1, 4096          # elements
        li   $t2, 0             # i
init:   beq  $t2, $t1, diag
        sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
diag:   li   $t3, 0             # starting column
        li   $t5, 0             # acc
        li   $t6, 16            # sweeps
        li   $t7, 48            # diagonal length (stays in range)
dloop:  beq  $t3, $t6, done
        la   $t0, mat
        sll  $t4, $t3, 2
        add  $t0, $t0, $t4      # &mat[0][start]
        li   $t2, 0
sweep:  beq  $t2, $t7, dnext
        lw   $t4, 0($t0)
        add  $t5, $t5, $t4
        addi $t0, $t0, 260      # down one row, right one column
        addi $t2, $t2, 1
        j    sweep
dnext:  addi $t3, $t3, 1
        j    dloop
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t5
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
