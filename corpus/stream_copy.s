# streaming: unit-stride copy between two static arrays, then reduce
# the destination.
        .data
src:    .space 4096
dst:    .space 4096
        .text
main:   la   $t0, src
        li   $t1, 1024          # element count
        li   $t2, 0             # i
        li   $t9, 3
init:   beq  $t2, $t1, copy
        mul  $t3, $t2, $t9      # src[i] = 3 * i
        sw   $t3, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
copy:   la   $t0, src
        la   $t4, dst
        li   $t2, 0
cloop:  beq  $t2, $t1, sum
        lw   $t3, 0($t0)
        sw   $t3, 0($t4)
        addi $t0, $t0, 4
        addi $t4, $t4, 4
        addi $t2, $t2, 1
        j    cloop
sum:    la   $t4, dst
        li   $t2, 0
        li   $t5, 0             # acc
sloop:  beq  $t2, $t1, done
        lw   $t3, 0($t4)
        add  $t5, $t5, $t3
        addi $t4, $t4, 4
        addi $t2, $t2, 1
        j    sloop
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t5
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
