# hash_probe: open-addressing inserts — 512 multiplicative-hashed
# keys into a 1024-slot static table with linear probing; prints the
# total probe count (a load-dependent irregular access stream).
        .data
tab:    .space 4096
        .text
main:   la   $t0, tab
        li   $t1, 1024          # slots
        li   $t2, 0
clr:    beq  $t2, $t1, fill
        sw   $zero, 0($t0)      # empty slot = 0
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    clr
fill:   li   $s0, 1             # i = 1 .. 512 (keys are nonzero)
        li   $s1, 513
        li   $s2, 0             # total probes
        li   $s3, -1640531527   # 2654435761 as a signed word
ins:    beq  $s0, $s1, done
        mul  $t3, $s0, $s3      # key = i * 2654435761 (mod 2^32)
        srl  $t4, $t3, 22       # slot = top 10 bits
probe:  addi $s2, $s2, 1
        li   $t5, 1023
        and  $t4, $t4, $t5
        sll  $t6, $t4, 2
        la   $t7, tab
        add  $t6, $t6, $t7
        lw   $t8, 0($t6)        # occupied?
        beq  $t8, $zero, place
        addi $t4, $t4, 1        # linear probe
        j    probe
place:  sw   $t3, 0($t6)
        addi $s0, $s0, 1
        j    ins
done:   li   $v0, 1             # print_int(total probes)
        move $a0, $s2
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
