# pointer_chase: one heap block as a 512-node array, linked in a
# shuffled order (i -> (i + 257) mod 512, a single 512-cycle), then
# chased for a full lap.  Consecutive hops span ~2KB.
        .text
main:   li   $a0, 4096          # 512 nodes * 8 bytes
        li   $v0, 13            # malloc
        syscall
        move $s0, $v0           # base
        li   $s1, 512
        li   $t2, 0             # i
link:   beq  $t2, $s1, walk
        sll  $t3, $t2, 3
        add  $t3, $t3, $s0      # &node[i]
        sw   $t2, 0($t3)        # node[i].value = i
        addi $t4, $t2, 257      # successor index
        li   $t5, 511
        and  $t4, $t4, $t5      # mod 512
        sll  $t4, $t4, 3
        add  $t4, $t4, $s0
        sw   $t4, 4($t3)        # node[i].next = &node[(i+257)%512]
        addi $t2, $t2, 1
        j    link
walk:   move $t0, $s0           # cursor = &node[0]
        li   $t1, 0             # acc
        li   $t2, 0             # steps
chase:  beq  $t2, $s1, done
        lw   $t3, 0($t0)
        add  $t1, $t1, $t3
        lw   $t0, 4($t0)
        addi $t2, $t2, 1
        j    chase
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t1
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
