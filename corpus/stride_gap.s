# strided: init a 4096-word array, then reduce every 8th element
# (32-byte gaps — one touch per cache line on most geometries).
        .data
arr:    .space 16384
        .text
main:   la   $t0, arr
        li   $t1, 4096          # elements
        li   $t2, 0             # i
init:   beq  $t2, $t1, gap
        sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
gap:    la   $t0, arr
        li   $t2, 0             # i, stepping by 8
        li   $t3, 0             # acc
loop:   slt  $t4, $t2, $t1
        beq  $t4, $zero, done
        lw   $t4, 0($t0)
        add  $t3, $t3, $t4
        addi $t0, $t0, 32       # 8 elements forward
        addi $t2, $t2, 8
        j    loop
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t3
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
