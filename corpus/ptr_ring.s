# pointer_chase: 128 individually malloc'd nodes closed into a ring,
# then chased for 4096 steps (32 laps) — a small pointer working set
# revisited far more often than it is built.
        .text
main:   li   $a0, 8
        li   $v0, 13            # malloc the first node
        syscall
        move $s0, $v0           # ring head
        move $s1, $v0           # tail cursor
        sw   $zero, 0($s0)      # head->value = 0
        li   $s2, 1             # nodes built so far
        li   $s3, 128           # ring size
build:  beq  $s2, $s3, close
        li   $a0, 8
        li   $v0, 13
        syscall
        sw   $s2, 0($v0)        # node->value = i
        sw   $v0, 4($s1)        # tail->next = node
        move $s1, $v0
        addi $s2, $s2, 1
        j    build
close:  sw   $s0, 4($s1)        # tail->next = head
        move $t0, $s0           # cursor
        li   $t1, 0             # acc
        li   $t2, 0             # steps
        li   $t3, 4096
chase:  beq  $t2, $t3, done
        lw   $t4, 0($t0)
        add  $t1, $t1, $t4
        lw   $t0, 4($t0)
        addi $t2, $t2, 1
        j    chase
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t1
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
