# hash_probe: build the same open-addressing table as hash_insert,
# then re-probe all 512 keys; prints insert + lookup probe totals
# combined (lookups retrace the insert displacement chains).
        .data
tab:    .space 4096
        .text
main:   la   $t0, tab
        li   $t1, 1024          # slots
        li   $t2, 0
clr:    beq  $t2, $t1, fill
        sw   $zero, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    clr
fill:   li   $s0, 1             # insert keys for i = 1 .. 512
        li   $s1, 513
        li   $s2, 0             # probe total
        li   $s3, -1640531527   # 2654435761 as a signed word
ins:    beq  $s0, $s1, look
        mul  $t3, $s0, $s3
        srl  $t4, $t3, 22
iprob:  addi $s2, $s2, 1
        li   $t5, 1023
        and  $t4, $t4, $t5
        sll  $t6, $t4, 2
        la   $t7, tab
        add  $t6, $t6, $t7
        lw   $t8, 0($t6)
        beq  $t8, $zero, place
        addi $t4, $t4, 1
        j    iprob
place:  sw   $t3, 0($t6)
        addi $s0, $s0, 1
        j    ins
look:   li   $s0, 1             # re-probe every key
lkup:   beq  $s0, $s1, done
        mul  $t3, $s0, $s3
        srl  $t4, $t3, 22
lprob:  addi $s2, $s2, 1
        li   $t5, 1023
        and  $t4, $t4, $t5
        sll  $t6, $t4, 2
        la   $t7, tab
        add  $t6, $t6, $t7
        lw   $t8, 0($t6)
        beq  $t8, $t3, found    # hit: stop probing
        addi $t4, $t4, 1
        j    lprob
found:  addi $s0, $s0, 1
        j    lkup
done:   li   $v0, 1             # print_int(probe total)
        move $a0, $s2
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
