# streaming: unit-stride init + reduce over a 1024-word static array.
        .data
arr:    .space 4096
        .text
main:   la   $t0, arr
        li   $t1, 1024          # element count
        li   $t2, 0             # i
init:   beq  $t2, $t1, sum
        sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    init
sum:    la   $t0, arr
        li   $t2, 0
        li   $t3, 0             # acc
loop:   beq  $t2, $t1, done
        lw   $t4, 0($t0)
        add  $t3, $t3, $t4
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        j    loop
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t3
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
