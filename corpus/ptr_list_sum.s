# pointer_chase: build a 512-node heap linked list (value, next) by
# consing onto the head, then traverse it summing values.
        .text
main:   li   $s0, 0             # head = null
        li   $s1, 512           # node count
        li   $s2, 0             # i
build:  beq  $s2, $s1, walk
        li   $a0, 8
        li   $v0, 13            # malloc(8)
        syscall
        sw   $s2, 0($v0)        # node->value = i
        sw   $s0, 4($v0)        # node->next = head
        move $s0, $v0
        addi $s2, $s2, 1
        j    build
walk:   li   $t0, 0             # acc
next:   beq  $s0, $zero, done
        lw   $t1, 0($s0)
        add  $t0, $t0, $t1
        lw   $s0, 4($s0)        # the chase: next pointer feeds the
        j    next               # following load address
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t0
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
