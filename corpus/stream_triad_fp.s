# streaming: FP triad a[i] = b[i] + 2.0 * c[i] over 512-word static
# arrays, then an integer checksum of the converted result.
        .data
a:      .space 2048
b:      .space 2048
c:      .space 2048
        .text
main:   la   $t0, b
        la   $t1, c
        li   $t2, 512           # element count
        li   $t3, 0             # i
init:   beq  $t3, $t2, triad
        mtc1 $f0, $t3           # b[i] = float(i)
        cvt.s.w $f0, $f0
        swc1 $f0, 0($t0)
        addi $t4, $t3, 1        # c[i] = float(i + 1)
        mtc1 $f1, $t4
        cvt.s.w $f1, $f1
        swc1 $f1, 0($t1)
        addi $t0, $t0, 4
        addi $t1, $t1, 4
        addi $t3, $t3, 1
        j    init
triad:  la   $t0, a
        la   $t1, b
        la   $t5, c
        li   $t3, 0
        li   $t6, 2             # the triad scalar, as float
        mtc1 $f2, $t6
        cvt.s.w $f2, $f2
tloop:  beq  $t3, $t2, sum
        lwc1 $f0, 0($t1)
        lwc1 $f1, 0($t5)
        fmul.s $f3, $f1, $f2
        fadd.s $f4, $f0, $f3
        swc1 $f4, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 4
        addi $t5, $t5, 4
        addi $t3, $t3, 1
        j    tloop
sum:    la   $t0, a
        li   $t3, 0
        li   $t7, 0             # int acc
sloop:  beq  $t3, $t2, done
        lwc1 $f0, 0($t0)
        cvt.w.s $f0, $f0
        mfc1 $t4, $f0
        add  $t7, $t7, $t4
        addi $t0, $t0, 4
        addi $t3, $t3, 1
        j    sloop
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t7
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
