# sparse_indirect: gather val[idx[i]] where idx[i] = (31 * i) mod 1024
# — a sequential index stream driving a scattered value stream.
        .data
idx:    .space 4096
val:    .space 4096
        .text
main:   la   $t0, idx
        la   $t1, val
        li   $t2, 1024          # elements
        li   $t3, 0             # i
        li   $t9, 31
init:   beq  $t3, $t2, gather
        mul  $t4, $t3, $t9
        li   $t5, 1023
        and  $t4, $t4, $t5      # (31 * i) mod 1024
        sw   $t4, 0($t0)
        sw   $t3, 0($t1)        # val[i] = i
        addi $t0, $t0, 4
        addi $t1, $t1, 4
        addi $t3, $t3, 1
        j    init
gather: la   $t0, idx
        la   $t1, val
        li   $t3, 0
        li   $t6, 0             # acc
loop:   beq  $t3, $t2, done
        lw   $t4, 0($t0)        # index load (sequential)
        sll  $t4, $t4, 2
        add  $t4, $t4, $t1
        lw   $t5, 0($t4)        # value load (scattered)
        add  $t6, $t6, $t5
        addi $t0, $t0, 4
        addi $t3, $t3, 1
        j    loop
done:   li   $v0, 1             # print_int(acc)
        move $a0, $t6
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall
