# recursion: naive doubly-recursive fib(18) — thousands of small call
# frames, so nearly every memory reference is stack traffic.
        .text
main:   li   $a0, 18
        jal  fib
        move $a0, $v0
        li   $v0, 1             # print_int(fib(18)) = 2584
        syscall
        li   $v0, 10            # exit(0)
        li   $a0, 0
        syscall

# fib($a0) -> $v0
fib:    li   $t0, 2
        slt  $t1, $a0, $t0      # n < 2 ?
        beq  $t1, $zero, frec
        move $v0, $a0
        jr   $ra
frec:   addi $sp, $sp, -12
        sw   $ra, 0($sp)
        sw   $a0, 4($sp)
        addi $a0, $a0, -1
        jal  fib
        sw   $v0, 8($sp)        # fib(n-1)
        lw   $a0, 4($sp)
        addi $a0, $a0, -2
        jal  fib
        lw   $t2, 8($sp)
        add  $v0, $v0, $t2
        lw   $ra, 0($sp)
        addi $sp, $sp, 12
        jr   $ra
